package hir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasicFunction(t *testing.T) {
	src := `
func demo (params=1, regs=7)
b0:
  r1 = const 5
  r2 = arg "size"
  r3 = r1 + r2
  store "total", r3
  r4 = load "total"
  r5 = neg r4
  r6 = call "mix"(r5, r0)
  raise "net" [sync] (len=r3, extra=r6)
  raise "later" [delay=100] ()
  branch r3 ? b1 : b2
b1:
  halt
  return
b2:
  return r6
`
	fn, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if fn.Name != "demo" || fn.NumParams != 1 || fn.NumRegs != 7 {
		t.Errorf("header: %s %d %d", fn.Name, fn.NumParams, fn.NumRegs)
	}
	if len(fn.Blocks) != 3 {
		t.Fatalf("blocks = %d", len(fn.Blocks))
	}
	if fn.Blocks[0].Term.Kind != TermBranch {
		t.Errorf("b0 term = %v", fn.Blocks[0].Term)
	}
	// The parsed function must re-print to a parseable, stable form.
	again, err := Parse(fn.String())
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != fn.String() {
		t.Errorf("not a fixpoint:\n%s\nvs\n%s", fn, again)
	}
	// And execute: 5 + size, stored.
	st := NewState()
	env := &Env{
		Globals: st,
		Args:    func(string) (Value, bool) { return IntVal(37), true },
		Intrinsics: map[string]Intrinsic{
			"mix": {Pure: true, Fn: func(a []Value) Value { return IntVal(a[0].Int() ^ a[1].Int()) }},
		},
	}
	if _, err := Exec(fn, env); err != nil {
		t.Fatal(err)
	}
	if st.Get("total").Int() != 42 {
		t.Errorf("total = %v", st.Get("total"))
	}
}

func TestParseConstKinds(t *testing.T) {
	src := `
func k (params=0, regs=4)
b0:
  r0 = const true
  r1 = const false
  r2 = const "hello world"
  r3 = const -42
  return r3
`
	fn, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Exec(fn, &Env{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != -42 {
		t.Errorf("ret = %v", got)
	}
	ins := fn.Blocks[0].Instrs
	if !ins[0].Const.Equal(BoolVal(true)) || !ins[2].Const.Equal(StrVal("hello world")) {
		t.Errorf("consts = %v %v", ins[0].Const, ins[2].Const)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"notfunc x (params=0, regs=0)",
		"func f params=0",
		"func f (wat=3)",
		"func f (params=x)",
		"func f (params=0, regs=1)\n  r0 = const 1", // instr before block label
		"func f (params=0, regs=1)\nb0:\n  r0 = const bytes[3]",
		"func f (params=0, regs=1)\nb0:\n  wiggle r0",
		"func f (params=0, regs=1)\nb0:\n  r0 = r1 ?? r0",
		"func f (params=0, regs=1)\nb0:\n  jump b9",          // out-of-range target
		"func f (params=0, regs=1)\nb0:\n  branch r0 ? b0",   // malformed branch
		"func f (params=0, regs=1)\nb0:\n  raise \"E\" x=r0", // missing parens
		"func f (params=0, regs=1)\nb0:\n  store \"g\"",      // missing reg
		"func f (params=0, regs=1)\nb0:\n  r0 = arg size",    // unquoted
		"func f (params=0, regs=2)\nb0:\n  r5 = const 1",     // reg out of range
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseToleratesCommentsAndBlankLines(t *testing.T) {
	src := `
func f (params=0, regs=1)
// a comment
b0:
  # another comment
  r0 = const 7

  return r0
`
	fn, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Exec(fn, &Env{})
	if err != nil || got.Int() != 7 {
		t.Errorf("got %v, %v", got, err)
	}
}

// Property: the disassembly of a random generated function parses back
// to an identical disassembly (print-parse fixpoint), and both versions
// behave identically.
func TestQuickParsePrintFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		fn := genCompileProgram(seed)
		text := fn.String()
		back, err := Parse(text)
		if err != nil {
			t.Logf("seed %d: parse error: %v\n%s", seed, err, text)
			return false
		}
		if back.String() != text {
			t.Logf("seed %d: fixpoint mismatch\n%s\nvs\n%s", seed, text, back.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestParseRejectsByteConstantsExplicitly(t *testing.T) {
	b := NewBuilder("f", 0)
	b.Const(BytesVal([]byte{1, 2}))
	b.Return(NoReg)
	fn := b.Fn()
	if _, err := Parse(fn.String()); err == nil || !strings.Contains(err.Error(), "byte constants") {
		t.Errorf("err = %v", err)
	}
}
