package hir

import (
	"errors"
	"fmt"
)

// Compiled is a function lowered to threaded closures: each instruction
// becomes one Go closure with its operands and intrinsic targets resolved
// at compile time, so execution dispatches through direct calls instead
// of the interpreter's per-instruction switch. The environment is bound
// at compile time; hirrt's environments read the current activation
// through an indirection cell, so one Compiled value serves every
// activation of its handler.
type Compiled struct {
	name    string
	numRegs int
	blocks  [][]instrFn
	terms   []termFn
}

// frame is the live register file of one execution.
type frame struct {
	regs   []Value
	budget *int
}

type instrFn func(f *frame) error

// termFn returns the next block, or done with an optional return value.
type termFn func(f *frame) (next BlockID, ret Value, done bool, err error)

// Name reports the compiled function's name.
func (c *Compiled) Name() string { return c.name }

// NumRegs reports the register file size needed to execute.
func (c *Compiled) NumRegs() int { return c.numRegs }

// Compile lowers fn against env. Intrinsic and function references are
// resolved eagerly: a missing intrinsic or OpCallFn target is a compile
// error rather than a runtime one. OpCallFn sites compile their callees
// transitively (recursion falls back to interpretation of the callee).
func Compile(fn *Function, env *Env) (*Compiled, error) {
	return compile(fn, env, map[string]bool{fn.Name: true})
}

func compile(fn *Function, env *Env, inProgress map[string]bool) (*Compiled, error) {
	if err := fn.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{name: fn.Name, numRegs: fn.NumRegs, terms: make([]termFn, len(fn.Blocks))}
	c.blocks = make([][]instrFn, len(fn.Blocks))
	for bi := range fn.Blocks {
		blk := &fn.Blocks[bi]
		steps := make([]instrFn, 0, len(blk.Instrs))
		for ii := range blk.Instrs {
			step, err := compileInstr(&blk.Instrs[ii], env, inProgress)
			if err != nil {
				return nil, fmt.Errorf("hir: compile %s b%d[%d]: %w", fn.Name, bi, ii, err)
			}
			steps = append(steps, step)
		}
		c.blocks[bi] = steps
		c.terms[bi] = compileTerm(blk.Term)
	}
	return c, nil
}

func compileInstr(in *Instr, env *Env, inProgress map[string]bool) (instrFn, error) {
	dst, a, b := in.Dst, in.A, in.B
	sym := in.Sym
	switch in.Op {
	case OpConst:
		v := in.Const
		return func(f *frame) error { f.regs[dst] = v; return nil }, nil
	case OpMov:
		return func(f *frame) error { f.regs[dst] = f.regs[a]; return nil }, nil
	case OpArg:
		lookup := env.Args
		if lookup == nil {
			return func(f *frame) error { f.regs[dst] = None; return nil }, nil
		}
		return func(f *frame) error {
			v, ok := lookup(sym)
			if !ok {
				v = None
			}
			f.regs[dst] = v
			return nil
		}, nil
	case OpBindArg:
		lookup := env.BindArgs
		if lookup == nil {
			return func(f *frame) error { f.regs[dst] = None; return nil }, nil
		}
		return func(f *frame) error {
			v, ok := lookup(sym)
			if !ok {
				v = None
			}
			f.regs[dst] = v
			return nil
		}, nil
	case OpLoad:
		st := env.Globals
		if st == nil {
			return func(f *frame) error { f.regs[dst] = None; return nil }, nil
		}
		return func(f *frame) error { f.regs[dst] = st.Get(sym); return nil }, nil
	case OpStore:
		st := env.Globals
		if st == nil {
			return func(*frame) error { return nil }, nil
		}
		return func(f *frame) error { st.Set(sym, f.regs[a]); return nil }, nil
	case OpBin:
		op := in.Bin
		// Specialize the hottest operators; the rest share EvalBin.
		switch op {
		case Add:
			return func(f *frame) error {
				x, y := f.regs[a], f.regs[b]
				if x.Kind == KInt && y.Kind == KInt {
					f.regs[dst] = Value{Kind: KInt, I: x.I + y.I}
					return nil
				}
				v, err := EvalBin(Add, x, y)
				f.regs[dst] = v
				return err
			}, nil
		case Sub:
			return func(f *frame) error {
				x, y := f.regs[a], f.regs[b]
				if x.Kind == KInt && y.Kind == KInt {
					f.regs[dst] = Value{Kind: KInt, I: x.I - y.I}
					return nil
				}
				v, err := EvalBin(Sub, x, y)
				f.regs[dst] = v
				return err
			}, nil
		default:
			return func(f *frame) error {
				v, err := EvalBin(op, f.regs[a], f.regs[b])
				f.regs[dst] = v
				return err
			}, nil
		}
	case OpUn:
		op := in.Un
		return func(f *frame) error { f.regs[dst] = EvalUn(op, f.regs[a]); return nil }, nil
	case OpCall:
		intr, ok := env.Intrinsics[sym]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoIntrinsic, sym)
		}
		call := intr.Fn
		args := append([]Reg(nil), in.Args...)
		switch len(args) {
		case 1:
			a0 := args[0]
			return func(f *frame) error {
				var buf [1]Value
				buf[0] = f.regs[a0]
				f.regs[dst] = call(buf[:])
				return nil
			}, nil
		case 2:
			a0, a1 := args[0], args[1]
			return func(f *frame) error {
				var buf [2]Value
				buf[0], buf[1] = f.regs[a0], f.regs[a1]
				f.regs[dst] = call(buf[:])
				return nil
			}, nil
		default:
			return func(f *frame) error {
				vals := make([]Value, len(args))
				for i, r := range args {
					vals[i] = f.regs[r]
				}
				f.regs[dst] = call(vals)
				return nil
			}, nil
		}
	case OpCallFn:
		callee, ok := env.Funcs[sym]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoFunc, sym)
		}
		args := append([]Reg(nil), in.Args...)
		if inProgress[sym] {
			// Recursive call: interpret the callee; a halt inside it
			// aborts the caller, matching interpreter semantics.
			return func(f *frame) error {
				vals := make([]Value, len(args))
				for i, r := range args {
					vals[i] = f.regs[r]
				}
				v, halted, _, err := execReuseHalt(callee, env, nil, vals)
				f.regs[dst] = v
				if err != nil {
					return err
				}
				if halted {
					return ErrHalted
				}
				return nil
			}, nil
		}
		inProgress[sym] = true
		sub, err := compile(callee, env, inProgress)
		delete(inProgress, sym)
		if err != nil {
			return nil, err
		}
		return func(f *frame) error {
			vals := make([]Value, len(args))
			for i, r := range args {
				vals[i] = f.regs[r]
			}
			v, halted, _, err := sub.execHalt(nil, vals)
			f.regs[dst] = v
			if err != nil {
				return err
			}
			if halted {
				return ErrHalted
			}
			return nil
		}, nil
	case OpRaise:
		raise := env.Raise
		if raise == nil {
			return func(*frame) error { return nil }, nil
		}
		args := append([]Reg(nil), in.Args...)
		names := append([]string(nil), in.ArgNames...)
		async, delay := in.Async, in.Delay
		return func(f *frame) error {
			nv := make([]NamedValue, len(args))
			for i, r := range args {
				nv[i] = NamedValue{Name: names[i], Val: f.regs[r]}
			}
			raise(sym, async, delay, nv)
			return nil
		}, nil
	case OpHalt:
		halt := env.Halt
		return func(*frame) error {
			if halt != nil {
				halt()
			}
			return ErrHalted
		}, nil
	default:
		return nil, fmt.Errorf("hir: cannot compile op %v", in.Op)
	}
}

func compileTerm(t Term) termFn {
	switch t.Kind {
	case TermJump:
		to := t.To
		return func(*frame) (BlockID, Value, bool, error) { return to, None, false, nil }
	case TermBranch:
		cond, to, els := t.Cond, t.To, t.Else
		return func(f *frame) (BlockID, Value, bool, error) {
			if f.regs[cond].Bool() {
				return to, None, false, nil
			}
			return els, None, false, nil
		}
	default: // TermReturn
		ret := t.Ret
		if ret == NoReg {
			return func(*frame) (BlockID, Value, bool, error) { return 0, None, true, nil }
		}
		return func(f *frame) (BlockID, Value, bool, error) { return 0, f.regs[ret], true, nil }
	}
}

// Exec runs the compiled function. scratch is reused for the register
// file when large enough (as in ExecReuse); the grown scratch is
// returned. OpHalt terminates execution normally, matching the
// interpreter's contract.
func (c *Compiled) Exec(scratch []Value, params ...Value) (Value, []Value, error) {
	v, _, scratch, err := c.execHalt(scratch, params)
	return v, scratch, err
}

// execHalt is Exec distinguishing a halt from a plain return, so
// compiled call sites can propagate it.
func (c *Compiled) execHalt(scratch []Value, params []Value) (Value, bool, []Value, error) {
	if cap(scratch) < c.numRegs {
		scratch = make([]Value, c.numRegs)
	}
	regs := scratch[:c.numRegs]
	for i := range regs {
		regs[i] = None
	}
	copy(regs, params)
	budget := defaultMaxSteps
	f := &frame{regs: regs, budget: &budget}
	bid := Entry
	for {
		steps := c.blocks[bid]
		budget -= len(steps) + 1
		if budget <= 0 {
			return None, false, scratch, ErrStepLimit
		}
		for _, step := range steps {
			if err := step(f); err != nil {
				if errors.Is(err, ErrHalted) {
					return None, true, scratch, nil
				}
				return None, false, scratch, fmt.Errorf("%s: %w", c.name, err)
			}
		}
		next, ret, done, err := c.terms[bid](f)
		if err != nil {
			return None, false, scratch, err
		}
		if done {
			return ret, false, scratch, nil
		}
		bid = next
	}
}
