package hir

import (
	"fmt"
	"strings"
)

// Reg is a virtual register index within a Function.
type Reg int32

// NoReg marks an absent register operand.
const NoReg Reg = -1

// BlockID indexes a basic block within a Function.
type BlockID int32

// Op enumerates HIR instructions.
type Op uint8

const (
	// OpConst: Dst = Const.
	OpConst Op = iota
	// OpMov: Dst = A.
	OpMov
	// OpArg: Dst = dynamic event argument named Sym (None if absent).
	OpArg
	// OpBindArg: Dst = static bind-time argument named Sym (None if absent).
	OpBindArg
	// OpLoad: Dst = global state cell Sym.
	OpLoad
	// OpStore: state cell Sym = A.
	OpStore
	// OpBin: Dst = A <Bin> B.
	OpBin
	// OpUn: Dst = <Un> A.
	OpUn
	// OpCall: Dst = intrinsic Sym(Args...). Purity comes from the
	// intrinsic registry at analysis time.
	OpCall
	// OpCallFn: Dst = HIR function Sym(Args...); inlinable.
	OpCallFn
	// OpRaise: raise event Sym with named arguments (ArgNames[i] bound to
	// Args[i]); Async/Delay select the activation mode. The optimizer's
	// subsumption replaces synchronous OpRaise instructions with the
	// inlined handler code of the raised event.
	OpRaise
	// OpHalt: stop execution of the remaining handlers of the current
	// event (and of the current function).
	OpHalt
)

var opNames = [...]string{
	OpConst: "const", OpMov: "mov", OpArg: "arg", OpBindArg: "bindarg",
	OpLoad: "load", OpStore: "store", OpBin: "bin", OpUn: "un",
	OpCall: "call", OpCallFn: "callfn", OpRaise: "raise", OpHalt: "halt",
}

// String names the op.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// BinOp enumerates binary operators.
type BinOp uint8

const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Mod
	And
	Or
	Xor
	Shl
	Shr
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
)

var binNames = [...]string{
	Add: "+", Sub: "-", Mul: "*", Div: "/", Mod: "%", And: "&", Or: "|",
	Xor: "^", Shl: "<<", Shr: ">>", Eq: "==", Ne: "!=", Lt: "<", Le: "<=",
	Gt: ">", Ge: ">=",
}

// String renders the operator.
func (b BinOp) String() string {
	if int(b) < len(binNames) {
		return binNames[b]
	}
	return fmt.Sprintf("BinOp(%d)", uint8(b))
}

// UnOp enumerates unary operators.
type UnOp uint8

const (
	// Neg is arithmetic negation.
	Neg UnOp = iota
	// Not is logical negation (any value; uses Value.Bool).
	Not
	// BNot is bitwise complement.
	BNot
	// Len yields the length of a string or byte value.
	Len
)

var unNames = [...]string{Neg: "neg", Not: "not", BNot: "bnot", Len: "len"}

// String renders the operator.
func (u UnOp) String() string {
	if int(u) < len(unNames) {
		return unNames[u]
	}
	return fmt.Sprintf("UnOp(%d)", uint8(u))
}

// Instr is one HIR instruction.
type Instr struct {
	Op       Op
	Dst      Reg
	A, B     Reg
	Args     []Reg
	ArgNames []string
	Sym      string
	Const    Value
	Bin      BinOp
	Un       UnOp
	Async    bool  // OpRaise: asynchronous activation
	Delay    int64 // OpRaise: timed activation delay (ns); implies Async semantics
}

// HasDst reports whether the instruction writes a register.
func (in *Instr) HasDst() bool {
	switch in.Op {
	case OpStore, OpRaise, OpHalt:
		return false
	default:
		return in.Dst != NoReg
	}
}

// uses appends the registers the instruction reads to buf.
func (in *Instr) uses(buf []Reg) []Reg {
	switch in.Op {
	case OpMov, OpUn, OpStore:
		if in.A != NoReg {
			buf = append(buf, in.A)
		}
	case OpBin:
		buf = append(buf, in.A, in.B)
	case OpCall, OpCallFn, OpRaise:
		buf = append(buf, in.Args...)
	}
	return buf
}

// String renders the instruction.
func (in *Instr) String() string {
	var b strings.Builder
	if in.HasDst() {
		fmt.Fprintf(&b, "r%d = ", in.Dst)
	}
	switch in.Op {
	case OpConst:
		fmt.Fprintf(&b, "const %s", in.Const)
	case OpMov:
		fmt.Fprintf(&b, "r%d", in.A)
	case OpArg:
		fmt.Fprintf(&b, "arg %q", in.Sym)
	case OpBindArg:
		fmt.Fprintf(&b, "bindarg %q", in.Sym)
	case OpLoad:
		fmt.Fprintf(&b, "load %q", in.Sym)
	case OpStore:
		fmt.Fprintf(&b, "store %q, r%d", in.Sym, in.A)
	case OpBin:
		fmt.Fprintf(&b, "r%d %s r%d", in.A, in.Bin, in.B)
	case OpUn:
		fmt.Fprintf(&b, "%s r%d", in.Un, in.A)
	case OpCall, OpCallFn:
		fmt.Fprintf(&b, "%s %q(", in.Op, in.Sym)
		for i, r := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "r%d", r)
		}
		b.WriteByte(')')
	case OpRaise:
		mode := "sync"
		if in.Delay > 0 {
			mode = fmt.Sprintf("delay=%d", in.Delay)
		} else if in.Async {
			mode = "async"
		}
		fmt.Fprintf(&b, "raise %q [%s] (", in.Sym, mode)
		for i, r := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=r%d", in.ArgNames[i], r)
		}
		b.WriteByte(')')
	case OpHalt:
		b.WriteString("halt")
	default:
		fmt.Fprintf(&b, "%s ?", in.Op)
	}
	return b.String()
}

// TermKind enumerates block terminators.
type TermKind uint8

const (
	// TermJump transfers to To.
	TermJump TermKind = iota
	// TermBranch transfers to To when Cond is true, otherwise Else.
	TermBranch
	// TermReturn leaves the function, optionally yielding Ret.
	TermReturn
)

// Term is a block terminator.
type Term struct {
	Kind TermKind
	Cond Reg
	To   BlockID
	Else BlockID
	Ret  Reg // NoReg for no result
}

// String renders the terminator.
func (t Term) String() string {
	switch t.Kind {
	case TermJump:
		return fmt.Sprintf("jump b%d", t.To)
	case TermBranch:
		return fmt.Sprintf("branch r%d ? b%d : b%d", t.Cond, t.To, t.Else)
	case TermReturn:
		if t.Ret != NoReg {
			return fmt.Sprintf("return r%d", t.Ret)
		}
		return "return"
	default:
		return "?"
	}
}

// Block is one basic block.
type Block struct {
	Instrs []Instr
	Term   Term
}

// Function is an HIR function. Registers 0..NumParams-1 hold the
// positional parameters (used by OpCallFn); handler bodies usually take
// zero parameters and read event arguments with OpArg instead.
type Function struct {
	Name      string
	NumParams int
	NumRegs   int
	Blocks    []Block
}

// Entry is the entry block of every function.
const Entry BlockID = 0

// NumInstrs counts instructions across all blocks (the code-size metric
// used for the paper's objdump comparison).
func (f *Function) NumInstrs() int {
	n := 0
	for i := range f.Blocks {
		n += len(f.Blocks[i].Instrs)
	}
	return n
}

// Clone deep-copies the function.
func (f *Function) Clone() *Function {
	g := &Function{Name: f.Name, NumParams: f.NumParams, NumRegs: f.NumRegs}
	g.Blocks = make([]Block, len(f.Blocks))
	for i := range f.Blocks {
		src := &f.Blocks[i]
		dst := &g.Blocks[i]
		dst.Term = src.Term
		dst.Instrs = make([]Instr, len(src.Instrs))
		for j := range src.Instrs {
			in := src.Instrs[j]
			if in.Args != nil {
				in.Args = append([]Reg(nil), in.Args...)
			}
			if in.ArgNames != nil {
				in.ArgNames = append([]string(nil), in.ArgNames...)
			}
			dst.Instrs[j] = in
		}
	}
	return g
}

// String disassembles the function.
func (f *Function) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s (params=%d, regs=%d)\n", f.Name, f.NumParams, f.NumRegs)
	for i := range f.Blocks {
		fmt.Fprintf(&b, "b%d:\n", i)
		for j := range f.Blocks[i].Instrs {
			fmt.Fprintf(&b, "  %s\n", f.Blocks[i].Instrs[j].String())
		}
		fmt.Fprintf(&b, "  %s\n", f.Blocks[i].Term)
	}
	return b.String()
}
