package hir

import "sort"

// State is the named global store shared by the handlers of a component
// (a micro-protocol's shared data structures in the paper's terms).
// Handler execution is serialized by the event runtime, so State needs no
// internal locking; the runtime models state-maintenance lock traffic
// separately.
type State struct {
	cells map[string]Value
}

// NewState returns an empty store.
func NewState() *State { return &State{cells: make(map[string]Value)} }

// Get reads a cell (None when absent).
func (s *State) Get(name string) Value {
	if v, ok := s.cells[name]; ok {
		return v
	}
	return None
}

// Set writes a cell.
func (s *State) Set(name string, v Value) { s.cells[name] = v }

// Len reports the number of populated cells.
func (s *State) Len() int { return len(s.cells) }

// Names returns the populated cell names, sorted.
func (s *State) Names() []string {
	out := make([]string, 0, len(s.cells))
	for n := range s.cells {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot copies the store (byte-slice payloads are copied too), for
// equivalence testing between optimized and unoptimized runs.
func (s *State) Snapshot() map[string]Value {
	out := make(map[string]Value, len(s.cells))
	for n, v := range s.cells {
		if v.Kind == KBytes {
			v.B = append([]byte(nil), v.B...)
		}
		out[n] = v
	}
	return out
}

// EqualSnapshot reports whether the store matches a snapshot exactly.
func (s *State) EqualSnapshot(snap map[string]Value) bool {
	if len(s.cells) != len(snap) {
		return false
	}
	for n, v := range s.cells {
		w, ok := snap[n]
		if !ok || !v.Equal(w) {
			return false
		}
	}
	return true
}
