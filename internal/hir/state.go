package hir

import "sort"

// State is the named global store shared by the handlers of a component
// (a micro-protocol's shared data structures in the paper's terms).
// Handler execution is serialized by the event runtime, so State needs no
// internal locking; the runtime models state-maintenance lock traffic
// separately.
//
// Cells are boxed so that compiled tiers can bind a *Cell once (at
// factory/install time) and read or write it without a map lookup per
// access; the interpreter keeps going through Get/Set by name.
type State struct {
	cells map[string]*Cell
}

// Cell is one named slot of a State. A cell obtained through CellRef
// before anything was stored in it reads as None and stays invisible to
// Len/Names/Snapshot until the first Set, so pre-binding cells for
// generated code does not perturb state-equivalence checks.
type Cell struct {
	v       Value
	present bool
}

// Get reads the cell's value (None when never set).
func (c *Cell) Get() Value { return c.v }

// Set writes the cell's value.
func (c *Cell) Set(v Value) {
	c.v = v
	c.present = true
}

// NewState returns an empty store.
func NewState() *State { return &State{cells: make(map[string]*Cell)} }

// CellRef returns the cell for name, creating an empty (not-present)
// cell if needed. The returned pointer stays valid for the lifetime of
// the State.
func (s *State) CellRef(name string) *Cell {
	if c, ok := s.cells[name]; ok {
		return c
	}
	c := &Cell{}
	s.cells[name] = c
	return c
}

// Get reads a cell (None when absent).
func (s *State) Get(name string) Value {
	if c, ok := s.cells[name]; ok {
		return c.v
	}
	return None
}

// Set writes a cell.
func (s *State) Set(name string, v Value) { s.CellRef(name).Set(v) }

// Len reports the number of populated cells.
func (s *State) Len() int {
	n := 0
	for _, c := range s.cells {
		if c.present {
			n++
		}
	}
	return n
}

// Names returns the populated cell names, sorted.
func (s *State) Names() []string {
	out := make([]string, 0, len(s.cells))
	for n, c := range s.cells {
		if c.present {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Snapshot copies the store (byte-slice payloads are copied too), for
// equivalence testing between optimized and unoptimized runs.
func (s *State) Snapshot() map[string]Value {
	out := make(map[string]Value, len(s.cells))
	for n, c := range s.cells {
		if !c.present {
			continue
		}
		v := c.v
		if v.Kind == KBytes {
			v.B = append([]byte(nil), v.B...)
		}
		out[n] = v
	}
	return out
}

// EqualSnapshot reports whether the store matches a snapshot exactly.
func (s *State) EqualSnapshot(snap map[string]Value) bool {
	if s.Len() != len(snap) {
		return false
	}
	for n, c := range s.cells {
		if !c.present {
			continue
		}
		w, ok := snap[n]
		if !ok || !c.v.Equal(w) {
			return false
		}
	}
	return true
}
