package opt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eventopt/internal/hir"
)

// countOp counts instructions with the given op.
func countOp(fn *hir.Function, op hir.Op) int {
	n := 0
	for bi := range fn.Blocks {
		for ii := range fn.Blocks[bi].Instrs {
			if fn.Blocks[bi].Instrs[ii].Op == op {
				n++
			}
		}
	}
	return n
}

func TestConstPropFoldsArithmetic(t *testing.T) {
	b := hir.NewBuilder("f", 0)
	x := b.Int(6)
	y := b.Int(7)
	z := b.Bin(hir.Mul, x, y)
	b.Store("out", z)
	b.Return(hir.NoReg)
	fn := b.Fn()
	ConstProp(fn, &Info{})
	if got := countOp(fn, hir.OpBin); got != 0 {
		t.Errorf("OpBin remaining = %d\n%s", got, fn)
	}
	st := hir.NewState()
	if _, err := hir.Exec(fn, &hir.Env{Globals: st}); err != nil {
		t.Fatal(err)
	}
	if st.Get("out").Int() != 42 {
		t.Errorf("out = %v", st.Get("out"))
	}
}

func TestConstPropFoldsBranch(t *testing.T) {
	b := hir.NewBuilder("f", 0)
	c := b.Const(hir.BoolVal(true))
	thenB := b.NewBlock()
	elseB := b.NewBlock()
	b.SetBlock(hir.Entry)
	b.Branch(c, thenB, elseB)
	b.SetBlock(thenB)
	one := b.Int(1)
	b.Store("path", one)
	b.Return(hir.NoReg)
	b.SetBlock(elseB)
	two := b.Int(2)
	b.Store("path", two)
	b.Return(hir.NoReg)
	fn := b.Fn()

	out := Optimize(fn, &Info{}, Default())
	// The else branch is unreachable after folding; only one store left.
	if got := countOp(out, hir.OpStore); got != 1 {
		t.Errorf("stores = %d\n%s", got, out)
	}
	st := hir.NewState()
	if _, err := hir.Exec(out, &hir.Env{Globals: st}); err != nil {
		t.Fatal(err)
	}
	if st.Get("path").Int() != 1 {
		t.Errorf("path = %v", st.Get("path"))
	}
}

func TestConstPropDoesNotFoldDivByZero(t *testing.T) {
	b := hir.NewBuilder("f", 0)
	x := b.Int(1)
	y := b.Int(0)
	z := b.Bin(hir.Div, x, y)
	b.Store("out", z)
	b.Return(hir.NoReg)
	fn := b.Fn()
	ConstProp(fn, &Info{})
	if got := countOp(fn, hir.OpBin); got != 1 {
		t.Errorf("div folded away: %d OpBin left\n%s", got, fn)
	}
}

func TestConstPropFoldsPureIntrinsic(t *testing.T) {
	b := hir.NewBuilder("f", 0)
	x := b.Int(4)
	y := b.Call("triple", x)
	b.Store("out", y)
	b.Return(hir.NoReg)
	fn := b.Fn()
	info := &Info{Intrinsics: map[string]hir.Intrinsic{
		"triple": {Fn: func(a []hir.Value) hir.Value { return hir.IntVal(a[0].Int() * 3) }, Pure: true},
	}}
	ConstProp(fn, info)
	if got := countOp(fn, hir.OpCall); got != 0 {
		t.Errorf("pure call not folded\n%s", fn)
	}
	st := hir.NewState()
	if _, err := hir.Exec(fn, &hir.Env{Globals: st}); err != nil {
		t.Fatal(err)
	}
	if st.Get("out").Int() != 12 {
		t.Errorf("out = %v", st.Get("out"))
	}
}

func TestConstPropKeepsImpureCall(t *testing.T) {
	b := hir.NewBuilder("f", 0)
	x := b.Int(4)
	y := b.Call("effectful", x)
	b.Store("out", y)
	b.Return(hir.NoReg)
	fn := b.Fn()
	info := &Info{Intrinsics: map[string]hir.Intrinsic{
		"effectful": {Fn: func(a []hir.Value) hir.Value { return hir.IntVal(9) }, Pure: false},
	}}
	ConstProp(fn, info)
	if got := countOp(fn, hir.OpCall); got != 1 {
		t.Errorf("impure call folded\n%s", fn)
	}
}

func TestCSEDeduplicatesLoadsAndOps(t *testing.T) {
	b := hir.NewBuilder("f", 0)
	l1 := b.Load("g")
	l2 := b.Load("g") // duplicate load
	s := b.Bin(hir.Add, l1, l2)
	s2 := b.Bin(hir.Add, l1, l2) // duplicate computation
	tot := b.Bin(hir.Add, s, s2)
	b.Store("out", tot)
	b.Return(hir.NoReg)
	fn := b.Fn()
	CSE(fn, &Info{})
	if got := countOp(fn, hir.OpLoad); got != 1 {
		t.Errorf("loads = %d\n%s", got, fn)
	}
	if got := countOp(fn, hir.OpBin); got != 2 {
		t.Errorf("bins = %d\n%s", got, fn)
	}
	st := hir.NewState()
	st.Set("g", hir.IntVal(5))
	if _, err := hir.Exec(fn, &hir.Env{Globals: st}); err != nil {
		t.Fatal(err)
	}
	if st.Get("out").Int() != 20 {
		t.Errorf("out = %v", st.Get("out"))
	}
}

func TestCSEStoreKillsLoad(t *testing.T) {
	b := hir.NewBuilder("f", 0)
	l1 := b.Load("g")
	one := b.Int(1)
	inc := b.Bin(hir.Add, l1, one)
	b.Store("g", inc)
	l2 := b.Load("g") // must NOT be replaced by l1
	b.Store("out", l2)
	b.Return(hir.NoReg)
	fn := b.Fn()
	CSE(fn, &Info{})
	if got := countOp(fn, hir.OpLoad); got != 2 {
		t.Errorf("loads = %d (store kill violated)\n%s", got, fn)
	}
}

func TestCSERaiseKillsLoads(t *testing.T) {
	b := hir.NewBuilder("f", 0)
	l1 := b.Load("g")
	b.Store("a", l1)
	b.Raise("E", nil, nil)
	l2 := b.Load("g")
	b.Store("b", l2)
	b.Return(hir.NoReg)
	fn := b.Fn()
	CSE(fn, &Info{})
	if got := countOp(fn, hir.OpLoad); got != 2 {
		t.Errorf("loads = %d (raise kill violated)\n%s", got, fn)
	}
}

func TestCSEDuplicateArgsCollapse(t *testing.T) {
	b := hir.NewBuilder("f", 0)
	a1 := b.Arg("size")
	a2 := b.Arg("size")
	s := b.Bin(hir.Add, a1, a2)
	b.Store("out", s)
	b.Return(hir.NoReg)
	fn := b.Fn()
	CSE(fn, &Info{})
	if got := countOp(fn, hir.OpArg); got != 1 {
		t.Errorf("args = %d\n%s", got, fn)
	}
}

func TestDCERemovesDeadPureCode(t *testing.T) {
	b := hir.NewBuilder("f", 0)
	x := b.Int(1)
	dead := b.Bin(hir.Add, x, x) // never used
	_ = dead
	deadLoad := b.Load("g") // never used
	_ = deadLoad
	b.Store("out", x)
	b.Return(hir.NoReg)
	fn := b.Fn()
	DCE(fn, &Info{})
	if got := fn.NumInstrs(); got != 2 { // const + store
		t.Errorf("instrs = %d\n%s", got, fn)
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	b := hir.NewBuilder("f", 0)
	x := b.Int(1)
	b.Store("g", x)
	y := b.Call("impure", x)
	_ = y
	b.Raise("E", nil, nil)
	b.Return(hir.NoReg)
	fn := b.Fn()
	DCE(fn, &Info{Intrinsics: map[string]hir.Intrinsic{"impure": {Fn: func([]hir.Value) hir.Value { return hir.None }}}})
	if countOp(fn, hir.OpStore) != 1 || countOp(fn, hir.OpCall) != 1 || countOp(fn, hir.OpRaise) != 1 {
		t.Errorf("side effects removed:\n%s", fn)
	}
}

func TestDCELoopLiveness(t *testing.T) {
	// A register defined before a loop and used inside it must stay live
	// around the back edge.
	b := hir.NewBuilder("f", 1)
	n := b.Param(0)
	step := b.Int(1)
	loop := b.NewBlock()
	exit := b.NewBlock()
	b.SetBlock(hir.Entry)
	b.Store("i", n)
	b.Jump(loop)
	b.SetBlock(loop)
	i := b.Load("i")
	i2 := b.Bin(hir.Sub, i, step)
	b.Store("i", i2)
	z := b.Int(0)
	c := b.Bin(hir.Gt, i2, z)
	b.Branch(c, loop, exit)
	b.SetBlock(exit)
	b.Return(hir.NoReg)
	fn := b.Fn()
	before := fn.NumInstrs()
	DCE(fn, &Info{})
	if fn.NumInstrs() != before {
		t.Errorf("DCE removed live loop code:\n%s", fn)
	}
	st := hir.NewState()
	if _, err := hir.Exec(fn, &hir.Env{Globals: st}, hir.IntVal(5)); err != nil {
		t.Fatal(err)
	}
	if st.Get("i").Int() != 0 {
		t.Errorf("i = %v", st.Get("i"))
	}
}

func TestPeepholeIdentities(t *testing.T) {
	// x + 0, x * 1, x ^ x, x * 0.
	b := hir.NewBuilder("f", 0)
	x := b.Arg("x")
	zero := b.Int(0)
	one := b.Int(1)
	a := b.Bin(hir.Add, x, zero)
	m := b.Bin(hir.Mul, a, one)
	xx := b.Bin(hir.Xor, m, m)
	mz := b.Bin(hir.Mul, x, zero)
	tot := b.Bin(hir.Add, xx, mz)
	b.Store("out", tot)
	b.Return(hir.NoReg)
	fn := b.Fn()
	env := func() (*hir.Env, *hir.State) {
		st := hir.NewState()
		return &hir.Env{
			Globals: st,
			Args: func(n string) (hir.Value, bool) {
				return hir.IntVal(37), true
			},
		}, st
	}
	e1, s1 := env()
	if _, err := hir.Exec(fn, e1); err != nil {
		t.Fatal(err)
	}
	out := Optimize(fn, &Info{}, Default())
	e2, s2 := env()
	if _, err := hir.Exec(out, e2); err != nil {
		t.Fatal(err)
	}
	if !s1.Get("out").Equal(s2.Get("out")) {
		t.Errorf("results differ: %v vs %v", s1.Get("out"), s2.Get("out"))
	}
	// x+0 is a no-op only for known ints; here x is an unknown arg, so the
	// add must survive. The x*0 and x^x still simplify:
	if got := countOp(out, hir.OpBin); got > 2 {
		t.Errorf("bins = %d, want <= 2\n%s", got, out)
	}
}

func TestPeepholeAddIdentityOnlyForInts(t *testing.T) {
	// "s" + 0 must not become a move: Add concatenates strings.
	b := hir.NewBuilder("f", 0)
	s := b.Const(hir.StrVal("s"))
	z := b.Int(0)
	r := b.Bin(hir.Add, s, z)
	b.Store("out", r)
	b.Return(hir.NoReg)
	fn := b.Fn()
	Peephole(fn)
	if got := countOp(fn, hir.OpBin); got != 1 {
		t.Errorf("string add simplified away\n%s", fn)
	}
}

func TestInlineSimpleCallee(t *testing.T) {
	cb := hir.NewBuilder("sq", 1)
	p := cb.Param(0)
	r := cb.Bin(hir.Mul, p, p)
	cb.Return(r)
	sq := cb.Fn()

	b := hir.NewBuilder("f", 0)
	x := b.Int(9)
	y := b.CallFn("sq", x)
	b.Store("out", y)
	b.Return(hir.NoReg)
	fn := b.Fn()

	info := &Info{Funcs: map[string]*hir.Function{"sq": sq}}
	Inline(fn, info, 0)
	if err := fn.Validate(); err != nil {
		t.Fatalf("invalid after inline: %v\n%s", err, fn)
	}
	if countOp(fn, hir.OpCallFn) != 0 {
		t.Errorf("call not inlined\n%s", fn)
	}
	st := hir.NewState()
	if _, err := hir.Exec(fn, &hir.Env{Globals: st}); err != nil {
		t.Fatal(err)
	}
	if st.Get("out").Int() != 81 {
		t.Errorf("out = %v", st.Get("out"))
	}
}

func TestInlineMultiBlockCallee(t *testing.T) {
	// abs(x): if x < 0 return -x else return x
	cb := hir.NewBuilder("abs", 1)
	p := cb.Param(0)
	z := cb.Int(0)
	c := cb.Bin(hir.Lt, p, z)
	neg := cb.NewBlock()
	pos := cb.NewBlock()
	cb.SetBlock(hir.Entry)
	cb.Branch(c, neg, pos)
	cb.SetBlock(neg)
	n := cb.Un(hir.Neg, p)
	cb.Return(n)
	cb.SetBlock(pos)
	cb.Return(p)
	abs := cb.Fn()

	b := hir.NewBuilder("f", 1)
	x := b.Param(0)
	y := b.CallFn("abs", x)
	two := b.Int(2)
	r := b.Bin(hir.Mul, y, two)
	b.Store("out", r)
	b.Return(hir.NoReg)
	fn := b.Fn()

	info := &Info{Funcs: map[string]*hir.Function{"abs": abs}}
	out := Optimize(fn, info, Default())
	if err := out.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if countOp(out, hir.OpCallFn) != 0 {
		t.Errorf("call survived\n%s", out)
	}
	for _, in := range []int64{-7, 7, 0} {
		st := hir.NewState()
		if _, err := hir.Exec(out, &hir.Env{Globals: st}, hir.IntVal(in)); err != nil {
			t.Fatal(err)
		}
		want := in
		if want < 0 {
			want = -want
		}
		if st.Get("out").Int() != want*2 {
			t.Errorf("f(%d): out = %v, want %d", in, st.Get("out"), want*2)
		}
	}
}

func TestInlineAfterConstArgsFoldsEverything(t *testing.T) {
	// Inlining a pure callee with constant arguments should let the whole
	// computation fold to a single constant store — the paper's point
	// that merging exposes value-based optimizations.
	cb := hir.NewBuilder("addk", 2)
	s := cb.Bin(hir.Add, cb.Param(0), cb.Param(1))
	cb.Return(s)
	addk := cb.Fn()

	b := hir.NewBuilder("f", 0)
	x := b.Int(40)
	y := b.Int(2)
	r := b.CallFn("addk", x, y)
	b.Store("out", r)
	b.Return(hir.NoReg)
	fn := b.Fn()

	out := Optimize(fn, &Info{Funcs: map[string]*hir.Function{"addk": addk}}, Default())
	if got := out.NumInstrs(); got != 2 { // const 42 + store
		t.Errorf("instrs = %d\n%s", got, out)
	}
	st := hir.NewState()
	if _, err := hir.Exec(out, &hir.Env{Globals: st}); err != nil {
		t.Fatal(err)
	}
	if st.Get("out").Int() != 42 {
		t.Errorf("out = %v", st.Get("out"))
	}
}

func TestInlineSkipsRecursionAndBigCallees(t *testing.T) {
	cb := hir.NewBuilder("rec", 0)
	cb.CallFn("rec")
	cb.Return(hir.NoReg)
	rec := cb.Fn()
	fn := rec.Clone()
	Inline(fn, &Info{Funcs: map[string]*hir.Function{"rec": rec}}, 0)
	if countOp(fn, hir.OpCallFn) != 1 {
		t.Error("self-recursive call inlined")
	}

	// Big callee exceeding the limit.
	bb := hir.NewBuilder("big", 0)
	prev := bb.Int(0)
	for i := 0; i < 10; i++ {
		prev = bb.Bin(hir.Add, prev, prev)
	}
	bb.Return(prev)
	big := bb.Fn()
	b2 := hir.NewBuilder("f", 0)
	b2.CallFn("big")
	b2.Return(hir.NoReg)
	f2 := b2.Fn()
	Inline(f2, &Info{Funcs: map[string]*hir.Function{"big": big}}, 5)
	if countOp(f2, hir.OpCallFn) != 1 {
		t.Error("oversized callee inlined")
	}
}

func TestSimplifyCFGMergesAndPrunes(t *testing.T) {
	b := hir.NewBuilder("f", 0)
	mid := b.NewBlock()
	end := b.NewBlock()
	dead := b.NewBlock()
	b.SetBlock(dead)
	x := b.Int(9)
	b.Store("dead", x)
	b.Return(hir.NoReg)
	b.SetBlock(hir.Entry)
	y := b.Int(1)
	_ = y
	b.Jump(mid)
	b.SetBlock(mid)
	b.Jump(end)
	b.SetBlock(end)
	z := b.Int(2)
	b.Store("out", z)
	b.Return(hir.NoReg)
	fn := b.Fn()

	SimplifyCFG(fn)
	if len(fn.Blocks) != 1 {
		t.Errorf("blocks = %d\n%s", len(fn.Blocks), fn)
	}
	if countOp(fn, hir.OpStore) != 1 {
		t.Errorf("dead block survived\n%s", fn)
	}
	if err := fn.Validate(); err != nil {
		t.Fatal(err)
	}
}

// genProgram builds a random but well-formed function mixing arithmetic,
// state access, args, branches and a possible raise, driven by seed.
func genProgram(seed int64) *hir.Function {
	rng := rand.New(rand.NewSource(seed))
	b := hir.NewBuilder("rand", 0)
	cells := []string{"c0", "c1", "c2"}
	args := []string{"a0", "a1"}
	var regs []hir.Reg
	emit := func(n int) {
		for i := 0; i < n; i++ {
			switch rng.Intn(7) {
			case 0:
				regs = append(regs, b.Int(int64(rng.Intn(9)-4)))
			case 1:
				regs = append(regs, b.Arg(args[rng.Intn(len(args))]))
			case 2:
				regs = append(regs, b.Load(cells[rng.Intn(len(cells))]))
			case 3:
				if len(regs) >= 2 {
					ops := []hir.BinOp{hir.Add, hir.Sub, hir.Mul, hir.And, hir.Or, hir.Xor, hir.Lt, hir.Eq}
					regs = append(regs, b.Bin(ops[rng.Intn(len(ops))],
						regs[rng.Intn(len(regs))], regs[rng.Intn(len(regs))]))
				}
			case 4:
				if len(regs) >= 1 {
					us := []hir.UnOp{hir.Neg, hir.Not, hir.BNot}
					regs = append(regs, b.Un(us[rng.Intn(len(us))], regs[rng.Intn(len(regs))]))
				}
			case 5:
				if len(regs) >= 1 {
					b.Store(cells[rng.Intn(len(cells))], regs[rng.Intn(len(regs))])
				}
			case 6:
				if len(regs) >= 1 && rng.Intn(3) == 0 {
					b.Raise("E", []string{"v"}, []hir.Reg{regs[rng.Intn(len(regs))]})
				}
			}
		}
	}
	emit(6 + rng.Intn(10))
	if len(regs) > 0 && rng.Intn(2) == 0 {
		cond := regs[rng.Intn(len(regs))]
		thenB := b.NewBlock()
		elseB := b.NewBlock()
		join := b.NewBlock()
		b.SetBlock(hir.Entry)
		b.Branch(cond, thenB, elseB)
		b.SetBlock(thenB)
		emit(3 + rng.Intn(6))
		b.Jump(join)
		b.SetBlock(elseB)
		emit(3 + rng.Intn(6))
		b.Jump(join)
		b.SetBlock(join)
		emit(2 + rng.Intn(4))
	}
	if len(regs) > 0 {
		b.Return(regs[rng.Intn(len(regs))])
	} else {
		b.Return(hir.NoReg)
	}
	return b.Fn()
}

type runResult struct {
	ret    hir.Value
	state  map[string]hir.Value
	raises []hir.NamedValue
	err    error
}

func run(fn *hir.Function) runResult {
	st := hir.NewState()
	st.Set("c0", hir.IntVal(11))
	var raises []hir.NamedValue
	env := &hir.Env{
		Globals: st,
		Args: func(n string) (hir.Value, bool) {
			switch n {
			case "a0":
				return hir.IntVal(3), true
			case "a1":
				return hir.IntVal(-2), true
			}
			return hir.None, false
		},
		Raise: func(name string, async bool, delay int64, args []hir.NamedValue) {
			raises = append(raises, args...)
		},
	}
	ret, err := hir.Exec(fn, env)
	return runResult{ret: ret, state: st.Snapshot(), raises: raises, err: err}
}

func equalResults(a, b runResult) bool {
	if (a.err == nil) != (b.err == nil) {
		return false
	}
	if a.err != nil {
		return true // both errored (e.g. div-by-zero kept unfolded)
	}
	if !a.ret.Equal(b.ret) || len(a.raises) != len(b.raises) {
		return false
	}
	for i := range a.raises {
		if a.raises[i].Name != b.raises[i].Name || !a.raises[i].Val.Equal(b.raises[i].Val) {
			return false
		}
	}
	if len(a.state) != len(b.state) {
		return false
	}
	for k, v := range a.state {
		if w, ok := b.state[k]; !ok || !v.Equal(w) {
			return false
		}
	}
	return true
}

// Property: the full optimization pipeline preserves the observable
// behavior (return value, final state, raise sequence) of random
// programs.
func TestQuickOptimizeSoundness(t *testing.T) {
	f := func(seed int64) bool {
		fn := genProgram(seed)
		orig := run(fn)
		out := Optimize(fn, &Info{}, Default())
		if err := out.Validate(); err != nil {
			t.Logf("seed %d: invalid output: %v", seed, err)
			return false
		}
		opt := run(out)
		if !equalResults(orig, opt) {
			t.Logf("seed %d mismatch:\nORIG(%v) %v\nOPT(%v) %v\nfn:\n%s\nout:\n%s",
				seed, orig.err, orig.state, opt.err, opt.state, fn, out)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: optimization never increases the instruction count on
// straight-line programs without raises (everything is foldable or
// removable, never duplicated).
func TestQuickOptimizeNeverGrowsStraightLine(t *testing.T) {
	f := func(seed int64) bool {
		fn := genProgram(seed)
		if len(fn.Blocks) != 1 {
			return true // branch-folding can duplicate nothing, but skip
		}
		out := Optimize(fn, &Info{}, Default())
		return out.NumInstrs() <= fn.NumInstrs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPeepholeKindSafety(t *testing.T) {
	// Regression: x*1 and x+0 must not be rewritten to a move when x is
	// not a known integer — Mul/Add coerce to int, Mov preserves kind.
	// Found by TestQuickHIRFusionSoundness: a bool flowing through x*1
	// reached an intrinsic as true instead of 1.
	b := hir.NewBuilder("f", 0)
	x := b.Arg("x") // unknown kind (could be bool at runtime)
	one := b.Int(1)
	m := b.Bin(hir.Mul, x, one)
	b.Store("m", m)
	zero := b.Int(0)
	a := b.Bin(hir.Add, x, zero)
	b.Store("a", a)
	fn := b.Fn()
	Peephole(fn)
	if got := countOp(fn, hir.OpBin); got != 2 {
		t.Fatalf("identity rewrites applied to unknown-kind operand:\n%s", fn)
	}
	// With a bool argument, results must be integer 1 under any pipeline.
	st := hir.NewState()
	env := &hir.Env{Globals: st, Args: func(string) (hir.Value, bool) {
		return hir.BoolVal(true), true
	}}
	out := Optimize(fn, &Info{}, Default())
	if _, err := hir.Exec(out, env); err != nil {
		t.Fatal(err)
	}
	if !st.Get("m").Equal(hir.IntVal(1)) || !st.Get("a").Equal(hir.IntVal(1)) {
		t.Errorf("m=%v a=%v, want integer 1", st.Get("m"), st.Get("a"))
	}
	// Known-int operands still simplify.
	b2 := hir.NewBuilder("g", 0)
	y := b2.Int(7)
	two := b2.Int(1)
	p := b2.Bin(hir.Mul, y, two)
	b2.Store("p", p)
	g := b2.Fn()
	Peephole(g)
	if got := countOp(g, hir.OpBin); got != 0 {
		t.Errorf("known-int identity not simplified:\n%s", g)
	}
}
