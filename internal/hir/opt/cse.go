package opt

import (
	"fmt"
	"strings"

	"eventopt/internal/hir"
)

// CSE performs local value numbering per basic block: pure computations
// (including argument resolutions, bind-argument reads and state loads)
// already performed earlier in the block are replaced by register moves.
// A store kills the load of its cell; raises, impure calls and function
// calls kill all loads (their handlers may mutate state). This is the
// paper's "redundant code elimination": once handlers are merged into one
// super-handler, repeated initializations and checks across the former
// handler bodies become block-local duplicates that this pass removes.
func CSE(fn *hir.Function, info *Info) {
	for bi := range fn.Blocks {
		cseBlock(fn, info, &fn.Blocks[bi])
	}
}

func cseBlock(fn *hir.Function, info *Info, blk *hir.Block) {
	nextVN := 1
	regVN := make(map[hir.Reg]int)      // current value number of each register
	exprReg := make(map[string]hir.Reg) // expression key -> register holding it
	exprVN := make(map[string]int)

	vnOf := func(r hir.Reg) int {
		if v, ok := regVN[r]; ok {
			return v
		}
		nextVN++
		regVN[r] = nextVN
		return nextVN
	}
	killLoads := func(cell string) {
		for k := range exprReg {
			if cell == "" && strings.HasPrefix(k, "load:") {
				delete(exprReg, k)
				delete(exprVN, k)
			} else if cell != "" && k == "load:"+cell {
				delete(exprReg, k)
				delete(exprVN, k)
			}
		}
	}

	for ii := range blk.Instrs {
		in := &blk.Instrs[ii]
		var key string
		switch in.Op {
		case hir.OpConst:
			key = "const:" + in.Const.String() + "/" + in.Const.Kind.String()
		case hir.OpArg:
			key = "arg:" + in.Sym
		case hir.OpBindArg:
			key = "bindarg:" + in.Sym
		case hir.OpLoad:
			key = "load:" + in.Sym
		case hir.OpBin:
			key = fmt.Sprintf("bin:%d:%d:%d", in.Bin, vnOf(in.A), vnOf(in.B))
		case hir.OpUn:
			key = fmt.Sprintf("un:%d:%d", in.Un, vnOf(in.A))
		case hir.OpCall:
			if info.pureCall(in.Sym) {
				parts := make([]string, len(in.Args))
				for i, r := range in.Args {
					parts[i] = fmt.Sprint(vnOf(r))
				}
				key = "call:" + in.Sym + ":" + strings.Join(parts, ",")
			}
		case hir.OpMov:
			// Copy propagation at the VN level.
			regVN[in.Dst] = vnOf(in.A)
			continue
		case hir.OpStore:
			killLoads(in.Sym)
			continue
		case hir.OpRaise, hir.OpCallFn:
			killLoads("")
			if in.Op == hir.OpCallFn {
				nextVN++
				regVN[in.Dst] = nextVN
			}
			continue
		default:
			continue
		}
		if key == "" { // impure call
			killLoads("")
			nextVN++
			regVN[in.Dst] = nextVN
			continue
		}
		if vn, ok := exprVN[key]; ok {
			src := exprReg[key]
			// The register must still hold the value it held when the
			// expression was computed.
			if regVN[src] == vn {
				*in = hir.Instr{Op: hir.OpMov, Dst: in.Dst, A: src}
				regVN[in.Dst] = vn
				continue
			}
		}
		nextVN++
		regVN[in.Dst] = nextVN
		exprVN[key] = nextVN
		exprReg[key] = in.Dst
	}
}
