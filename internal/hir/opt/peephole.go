package opt

import (
	"eventopt/internal/hir"
)

// Peephole applies block-local algebraic simplifications to binary
// operations with one constant operand: x+0, x-0, x*1, x/1, x|0, x^0,
// x<<0, x>>0 become moves; x*0, x&0, x^x and x-x become the constant 0.
//
// Soundness note: arithmetic operators coerce their result to an
// integer, while a move preserves the operand's kind (a bool stays a
// bool). Identity rewrites to moves therefore require the variable
// operand to be a *known integer*; a block-local kind inference tracks
// that (constants, arithmetic results, Neg/BNot/Len). The rewrites to
// constants are kind-safe unconditionally, since the operators produce
// integer zero for every operand kind.
func Peephole(fn *hir.Function) {
	for bi := range fn.Blocks {
		blk := &fn.Blocks[bi]
		consts := make(map[hir.Reg]hir.Value)
		intKind := make(map[hir.Reg]bool)
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			if in.Op == hir.OpBin {
				simplifyBin(in, consts, intKind)
			}
			if !in.HasDst() {
				continue
			}
			delete(consts, in.Dst)
			delete(intKind, in.Dst)
			switch in.Op {
			case hir.OpConst:
				consts[in.Dst] = in.Const
				intKind[in.Dst] = in.Const.Kind == hir.KInt
			case hir.OpMov:
				intKind[in.Dst] = intKind[in.A]
				if c, ok := consts[in.A]; ok {
					consts[in.Dst] = c
				}
			case hir.OpBin:
				switch in.Bin {
				case hir.Eq, hir.Ne, hir.Lt, hir.Le, hir.Gt, hir.Ge:
					// comparisons produce bools
				case hir.Add:
					// Add may concatenate strings or bytes
				default:
					intKind[in.Dst] = true
				}
			case hir.OpUn:
				if in.Un == hir.Neg || in.Un == hir.BNot || in.Un == hir.Len {
					intKind[in.Dst] = true
				}
			}
		}
	}
}

func simplifyBin(in *hir.Instr, consts map[hir.Reg]hir.Value, intKind map[hir.Reg]bool) {
	aC, aOK := consts[in.A]
	bC, bOK := consts[in.B]
	isInt := func(v hir.Value, ok bool, want int64) bool {
		return ok && v.Kind == hir.KInt && v.I == want
	}
	// mov rewrites only when the surviving operand is a known integer:
	// the arithmetic result would be an integer, and the move must not
	// resurrect a non-integer kind.
	mov := func(src hir.Reg) {
		if !intKind[src] {
			return
		}
		*in = hir.Instr{Op: hir.OpMov, Dst: in.Dst, A: src}
	}
	konst := func(v hir.Value) {
		*in = hir.Instr{Op: hir.OpConst, Dst: in.Dst, Const: v}
	}
	switch in.Bin {
	case hir.Add:
		// Add also concatenates strings/bytes; the int-kind requirement
		// on the surviving operand (enforced by mov) covers that.
		if isInt(bC, bOK, 0) {
			mov(in.A)
		} else if isInt(aC, aOK, 0) {
			mov(in.B)
		}
	case hir.Sub:
		if in.A == in.B {
			konst(hir.IntVal(0))
		} else if isInt(bC, bOK, 0) {
			mov(in.A)
		}
	case hir.Mul:
		switch {
		case isInt(bC, bOK, 0) || isInt(aC, aOK, 0):
			konst(hir.IntVal(0))
		case isInt(bC, bOK, 1):
			mov(in.A)
		case isInt(aC, aOK, 1):
			mov(in.B)
		}
	case hir.Div:
		if isInt(bC, bOK, 1) {
			mov(in.A)
		}
	case hir.Or, hir.Xor:
		if in.Bin == hir.Xor && in.A == in.B {
			konst(hir.IntVal(0))
		} else if isInt(bC, bOK, 0) {
			mov(in.A)
		} else if isInt(aC, aOK, 0) {
			mov(in.B)
		}
	case hir.And:
		if isInt(bC, bOK, 0) || isInt(aC, aOK, 0) {
			konst(hir.IntVal(0))
		}
	case hir.Shl, hir.Shr:
		if isInt(bC, bOK, 0) {
			mov(in.A)
		}
	}
}
