// Package opt implements the compiler optimizations of paper section
// 3.2.2 over HIR functions: function inlining, constant propagation with
// folding and branch elimination, local common-subexpression elimination
// (the paper's "redundant code elimination" across merged handlers),
// algebraic peephole simplification, dead-code elimination, and CFG
// cleanup. The passes are what make handler merging profitable beyond
// saved indirect calls: once formerly separate handler bodies sit in one
// function, bind-time constants propagate, repeated loads and checks
// collapse, and unreachable fallback code disappears.
package opt

import (
	"eventopt/internal/hir"
)

// Info supplies the inter-procedural facts the passes may rely on.
type Info struct {
	// Intrinsics gives purity (and, for folding, implementations) of
	// OpCall targets. A missing entry is treated as impure.
	Intrinsics map[string]hir.Intrinsic
	// Funcs resolves OpCallFn targets for inlining.
	Funcs map[string]*hir.Function
}

func (in *Info) intrinsic(sym string) (hir.Intrinsic, bool) {
	if in == nil {
		return hir.Intrinsic{}, false
	}
	i, ok := in.Intrinsics[sym]
	return i, ok
}

func (in *Info) pureCall(sym string) bool {
	i, ok := in.intrinsic(sym)
	return ok && i.Pure
}

func (in *Info) fn(sym string) *hir.Function {
	if in == nil {
		return nil
	}
	return in.Funcs[sym]
}

// Options selects passes. The zero value runs nothing; use Default for
// the full pipeline.
type Options struct {
	Inline    bool
	InlineMax int // max callee instruction count to inline (0: 64)
	ConstProp bool
	CSE       bool
	Peephole  bool
	DCE       bool
	// Iterations repeats the pipeline to let passes feed each other
	// (inlined constants fold, folded branches unreach code, ...). 0
	// means 3.
	Iterations int
}

// Default enables every pass.
func Default() Options {
	return Options{Inline: true, ConstProp: true, CSE: true, Peephole: true, DCE: true}
}

// Optimize returns an optimized deep copy of fn; the input is never
// mutated. The result always validates.
func Optimize(fn *hir.Function, info *Info, opts Options) *hir.Function {
	out := fn.Clone()
	iters := opts.Iterations
	if iters <= 0 {
		iters = 3
	}
	for i := 0; i < iters; i++ {
		if opts.Inline {
			Inline(out, info, opts.InlineMax)
		}
		if opts.ConstProp {
			ConstProp(out, info)
		}
		SimplifyCFG(out)
		if opts.CSE {
			CSE(out, info)
		}
		if opts.Peephole {
			Peephole(out)
		}
		CopyProp(out)
		if opts.DCE {
			DCE(out, info)
		}
		SimplifyCFG(out)
	}
	return out
}

// pure reports whether an instruction has no side effects (so it may be
// removed when its result is dead, and reused by value numbering).
func pure(in *hir.Instr, info *Info) bool {
	switch in.Op {
	case hir.OpConst, hir.OpMov, hir.OpArg, hir.OpBindArg, hir.OpLoad, hir.OpBin, hir.OpUn:
		return true
	case hir.OpCall:
		return info.pureCall(in.Sym)
	default:
		// OpStore, OpRaise, OpHalt, OpCallFn (callee effects unknown).
		return false
	}
}

// successors returns the successor block ids of b.
func successors(b *hir.Block) []hir.BlockID {
	switch b.Term.Kind {
	case hir.TermJump:
		return []hir.BlockID{b.Term.To}
	case hir.TermBranch:
		if b.Term.To == b.Term.Else {
			return []hir.BlockID{b.Term.To}
		}
		return []hir.BlockID{b.Term.To, b.Term.Else}
	default:
		return nil
	}
}

// reachable returns the set of blocks reachable from entry.
func reachable(fn *hir.Function) []bool {
	seen := make([]bool, len(fn.Blocks))
	stack := []hir.BlockID{hir.Entry}
	seen[hir.Entry] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range successors(&fn.Blocks[b]) {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// rpo returns reachable blocks in reverse postorder.
func rpo(fn *hir.Function) []hir.BlockID {
	seen := make([]bool, len(fn.Blocks))
	var order []hir.BlockID
	var dfs func(b hir.BlockID)
	dfs = func(b hir.BlockID) {
		seen[b] = true
		for _, s := range successors(&fn.Blocks[b]) {
			if !seen[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(hir.Entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// SimplifyCFG removes unreachable blocks, threads jumps to trivial jump
// blocks, turns same-target branches into jumps, and merges straight-line
// block pairs. It preserves block 0 as the entry.
func SimplifyCFG(fn *hir.Function) {
	changed := true
	for changed {
		changed = false

		// Branch with identical arms -> jump.
		for i := range fn.Blocks {
			t := &fn.Blocks[i].Term
			if t.Kind == hir.TermBranch && t.To == t.Else {
				*t = hir.Term{Kind: hir.TermJump, To: t.To}
				changed = true
			}
		}

		// Thread jumps through empty jump-only blocks.
		target := func(b hir.BlockID) hir.BlockID {
			hops := 0
			for hops < len(fn.Blocks) {
				blk := &fn.Blocks[b]
				if len(blk.Instrs) != 0 || blk.Term.Kind != hir.TermJump || blk.Term.To == b {
					return b
				}
				b = blk.Term.To
				hops++
			}
			return b
		}
		for i := range fn.Blocks {
			t := &fn.Blocks[i].Term
			switch t.Kind {
			case hir.TermJump:
				if nt := target(t.To); nt != t.To {
					t.To = nt
					changed = true
				}
			case hir.TermBranch:
				if nt := target(t.To); nt != t.To {
					t.To = nt
					changed = true
				}
				if nt := target(t.Else); nt != t.Else {
					t.Else = nt
					changed = true
				}
			}
		}

		// Merge b -> c when b jumps to c and c has exactly one predecessor.
		preds := make([]int, len(fn.Blocks))
		seen := reachable(fn)
		for i := range fn.Blocks {
			if !seen[i] {
				continue
			}
			for _, s := range successors(&fn.Blocks[i]) {
				preds[s]++
			}
		}
		for i := range fn.Blocks {
			if !seen[i] {
				continue
			}
			t := fn.Blocks[i].Term
			if t.Kind != hir.TermJump {
				continue
			}
			c := t.To
			if int(c) == i || c == hir.Entry || preds[c] != 1 {
				continue
			}
			fn.Blocks[i].Instrs = append(fn.Blocks[i].Instrs, fn.Blocks[c].Instrs...)
			fn.Blocks[i].Term = fn.Blocks[c].Term
			fn.Blocks[c].Instrs = nil
			fn.Blocks[c].Term = hir.Term{Kind: hir.TermReturn, Ret: hir.NoReg}
			changed = true
			break // predecessor counts are stale; recompute
		}
	}
	compact(fn)
}

// compact drops unreachable blocks and renumbers the survivors.
func compact(fn *hir.Function) {
	seen := reachable(fn)
	remap := make([]hir.BlockID, len(fn.Blocks))
	var out []hir.Block
	for i := range fn.Blocks {
		if seen[i] {
			remap[i] = hir.BlockID(len(out))
			out = append(out, fn.Blocks[i])
		}
	}
	for i := range out {
		t := &out[i].Term
		switch t.Kind {
		case hir.TermJump:
			t.To = remap[t.To]
		case hir.TermBranch:
			t.To = remap[t.To]
			t.Else = remap[t.Else]
		}
	}
	fn.Blocks = out
}
