package opt

import (
	"eventopt/internal/hir"
)

// DCE removes pure instructions whose results are never used, via an
// iterative backward liveness analysis over the CFG. Stores, raises,
// halts and impure calls are always retained.
func DCE(fn *hir.Function, info *Info) {
	n := len(fn.Blocks)
	liveIn := make([]map[hir.Reg]bool, n)
	for i := range liveIn {
		liveIn[i] = make(map[hir.Reg]bool)
	}

	// Predecessor lists for propagation.
	preds := make([][]hir.BlockID, n)
	for i := range fn.Blocks {
		for _, s := range successors(&fn.Blocks[i]) {
			preds[s] = append(preds[s], hir.BlockID(i))
		}
	}

	liveOutOf := func(b hir.BlockID) map[hir.Reg]bool {
		out := make(map[hir.Reg]bool)
		for _, s := range successors(&fn.Blocks[b]) {
			for r := range liveIn[s] {
				out[r] = true
			}
		}
		return out
	}

	flow := func(b hir.BlockID, remove bool) bool {
		blk := &fn.Blocks[b]
		live := liveOutOf(b)
		switch blk.Term.Kind {
		case hir.TermBranch:
			live[blk.Term.Cond] = true
		case hir.TermReturn:
			if blk.Term.Ret != hir.NoReg {
				live[blk.Term.Ret] = true
			}
		}
		var kept []hir.Instr
		if remove {
			kept = make([]hir.Instr, 0, len(blk.Instrs))
		}
		for ii := len(blk.Instrs) - 1; ii >= 0; ii-- {
			in := &blk.Instrs[ii]
			dead := in.HasDst() && !live[in.Dst] && pure(in, info)
			// A self-move is dead even when its target is live.
			if in.Op == hir.OpMov && in.Dst == in.A {
				dead = true
			}
			if dead {
				continue
			}
			if remove {
				kept = append(kept, *in)
			}
			if in.HasDst() {
				delete(live, in.Dst)
			}
			for _, u := range usesOf(in) {
				live[u] = true
			}
		}
		if remove {
			// kept was built backwards.
			for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
				kept[i], kept[j] = kept[j], kept[i]
			}
			blk.Instrs = kept
		}
		changed := false
		if len(live) != len(liveIn[b]) {
			changed = true
		} else {
			for r := range live {
				if !liveIn[b][r] {
					changed = true
					break
				}
			}
		}
		liveIn[b] = live
		return changed
	}

	// Fixpoint.
	work := make([]hir.BlockID, 0, n)
	for i := n - 1; i >= 0; i-- {
		work = append(work, hir.BlockID(i))
	}
	inWork := make([]bool, n)
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b] = false
		if flow(b, false) {
			for _, p := range preds[b] {
				if !inWork[p] {
					inWork[p] = true
					work = append(work, p)
				}
			}
		}
	}
	// Final removal sweep with stable liveness.
	for i := range fn.Blocks {
		flow(hir.BlockID(i), true)
	}
}

func usesOf(in *hir.Instr) []hir.Reg {
	var buf [4]hir.Reg
	switch in.Op {
	case hir.OpMov, hir.OpUn, hir.OpStore:
		return append(buf[:0], in.A)
	case hir.OpBin:
		return append(buf[:0], in.A, in.B)
	case hir.OpCall, hir.OpCallFn, hir.OpRaise:
		return in.Args
	default:
		return nil
	}
}
