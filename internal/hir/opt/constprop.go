package opt

import (
	"eventopt/internal/hir"
)

// latKind is the constant-propagation lattice: unreached < const < varying.
type latKind uint8

const (
	latUnreached latKind = iota
	latConst
	latVarying
)

type lat struct {
	kind latKind
	val  hir.Value
}

func meet(a, b lat) lat {
	switch {
	case a.kind == latUnreached:
		return b
	case b.kind == latUnreached:
		return a
	case a.kind == latVarying || b.kind == latVarying:
		return lat{kind: latVarying}
	case a.val.Equal(b.val):
		return a
	default:
		return lat{kind: latVarying}
	}
}

type cpState []lat

func (s cpState) clone() cpState {
	out := make(cpState, len(s))
	copy(out, s)
	return out
}

func (s cpState) meetWith(o cpState) bool {
	changed := false
	for i := range s {
		m := meet(s[i], o[i])
		if m.kind != s[i].kind || (m.kind == latConst && !m.val.Equal(s[i].val)) {
			s[i] = m
			changed = true
		}
	}
	return changed
}

// ConstProp runs an iterative constant-propagation dataflow over the CFG,
// folds instructions whose operands are constant, and resolves branches
// with constant conditions into jumps. Registers start as the constant
// None (matching interpreter semantics for uninitialized registers)
// except the positional parameters, which are unknown.
func ConstProp(fn *hir.Function, info *Info) {
	n := len(fn.Blocks)
	in := make([]cpState, n)
	entry := make(cpState, fn.NumRegs)
	for r := 0; r < fn.NumRegs; r++ {
		if r < fn.NumParams {
			entry[r] = lat{kind: latVarying}
		} else {
			entry[r] = lat{kind: latConst, val: hir.None}
		}
	}
	in[hir.Entry] = entry

	// Iterate to fixpoint over reachable blocks in RPO.
	order := rpo(fn)
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if in[b] == nil {
				continue
			}
			out := transfer(fn, info, b, in[b].clone(), nil)
			for _, s := range successors(&fn.Blocks[b]) {
				if in[s] == nil {
					in[s] = out.clone()
					changed = true
				} else if in[s].meetWith(out) {
					changed = true
				}
			}
		}
	}

	// Rewrite: fold constant pure instructions and constant branches.
	for _, b := range order {
		if in[b] == nil {
			continue
		}
		st := in[b].clone()
		transfer(fn, info, b, st, func(ii int, dst hir.Reg, v hir.Value) {
			instr := &fn.Blocks[b].Instrs[ii]
			if pure(instr, info) && instr.Op != hir.OpConst {
				*instr = hir.Instr{Op: hir.OpConst, Dst: dst, Const: v}
			}
		})
		t := &fn.Blocks[b].Term
		if t.Kind == hir.TermBranch && st[t.Cond].kind == latConst {
			to := t.Else
			if st[t.Cond].val.Bool() {
				to = t.To
			}
			*t = hir.Term{Kind: hir.TermJump, To: to}
		}
	}
}

// transfer applies the block's instructions to st; when fold is non-nil
// it is invoked for every instruction whose result is a known constant.
func transfer(fn *hir.Function, info *Info, b hir.BlockID, st cpState, fold func(ii int, dst hir.Reg, v hir.Value)) cpState {
	blk := &fn.Blocks[b]
	for ii := range blk.Instrs {
		instr := &blk.Instrs[ii]
		if !instr.HasDst() {
			continue
		}
		res := lat{kind: latVarying}
		switch instr.Op {
		case hir.OpConst:
			res = lat{kind: latConst, val: instr.Const}
		case hir.OpMov:
			res = st[instr.A]
		case hir.OpBin:
			a, bb := st[instr.A], st[instr.B]
			if a.kind == latConst && bb.kind == latConst {
				if v, err := hir.EvalBin(instr.Bin, a.val, bb.val); err == nil {
					res = lat{kind: latConst, val: v}
				}
			}
		case hir.OpUn:
			if a := st[instr.A]; a.kind == latConst {
				res = lat{kind: latConst, val: hir.EvalUn(instr.Un, a.val)}
			}
		case hir.OpCall:
			// Fold pure intrinsic calls with all-constant arguments.
			if intr, ok := info.intrinsic(instr.Sym); ok && intr.Pure {
				args := make([]hir.Value, len(instr.Args))
				allConst := true
				for i, r := range instr.Args {
					if st[r].kind != latConst {
						allConst = false
						break
					}
					args[i] = st[r].val
				}
				if allConst {
					res = lat{kind: latConst, val: intr.Fn(args)}
				}
			}
		}
		if res.kind == latConst && fold != nil {
			fold(ii, instr.Dst, res.val)
		}
		st[instr.Dst] = res
	}
	return st
}
