package opt

import (
	"eventopt/internal/hir"
)

// CopyProp rewrites block-local uses of registers that are plain copies
// (r2 = r5) to use the copy source directly, so DCE can delete the move.
// Only copies whose source register is not redefined between the move and
// the use are propagated.
func CopyProp(fn *hir.Function) {
	for bi := range fn.Blocks {
		blk := &fn.Blocks[bi]
		copyOf := make(map[hir.Reg]hir.Reg)
		resolve := func(r hir.Reg) hir.Reg {
			for i := 0; i < len(copyOf); i++ { // bounded chase
				s, ok := copyOf[r]
				if !ok {
					return r
				}
				r = s
			}
			return r
		}
		invalidate := func(dst hir.Reg) {
			delete(copyOf, dst)
			for d, s := range copyOf {
				if s == dst {
					delete(copyOf, d)
				}
			}
		}
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			// Rewrite uses first.
			switch in.Op {
			case hir.OpMov, hir.OpUn, hir.OpStore:
				in.A = resolve(in.A)
			case hir.OpBin:
				in.A = resolve(in.A)
				in.B = resolve(in.B)
			case hir.OpCall, hir.OpCallFn, hir.OpRaise:
				for i := range in.Args {
					in.Args[i] = resolve(in.Args[i])
				}
			}
			// Then record/invalidate definitions.
			if in.HasDst() {
				invalidate(in.Dst)
				if in.Op == hir.OpMov && in.A != in.Dst {
					copyOf[in.Dst] = in.A
				}
			}
		}
		switch blk.Term.Kind {
		case hir.TermBranch:
			blk.Term.Cond = resolve(blk.Term.Cond)
		case hir.TermReturn:
			if blk.Term.Ret != hir.NoReg {
				blk.Term.Ret = resolve(blk.Term.Ret)
			}
		}
	}
}
