package opt

import (
	"eventopt/internal/hir"
)

// Inline expands OpCallFn sites whose callees are known in info and no
// larger than maxInstrs instructions (0 selects a default of 64). Callee
// blocks are spliced into the caller with registers and block ids
// renamed; positional parameters become moves from the call's argument
// registers, and each callee return jumps to the continuation block,
// assigning the call's destination register. Direct recursion is left
// alone. The pass repeats until no inlinable call remains (bounded, so
// mutual recursion terminates).
func Inline(fn *hir.Function, info *Info, maxInstrs int) {
	if maxInstrs <= 0 {
		maxInstrs = 64
	}
	for round := 0; round < 8; round++ {
		site, callee := findSite(fn, info, maxInstrs)
		if site == nil {
			return
		}
		expand(fn, site.block, site.index, callee)
	}
}

type callSite struct {
	block hir.BlockID
	index int
}

func findSite(fn *hir.Function, info *Info, maxInstrs int) (*callSite, *hir.Function) {
	for bi := range fn.Blocks {
		for ii := range fn.Blocks[bi].Instrs {
			in := &fn.Blocks[bi].Instrs[ii]
			if in.Op != hir.OpCallFn {
				continue
			}
			callee := info.fn(in.Sym)
			if callee == nil || callee.Name == fn.Name || callee.NumInstrs() > maxInstrs {
				continue
			}
			return &callSite{block: hir.BlockID(bi), index: ii}, callee
		}
	}
	return nil, nil
}

// expand splices callee at the given call site.
func expand(fn *hir.Function, b hir.BlockID, ii int, callee *hir.Function) {
	call := fn.Blocks[b].Instrs[ii] // copy before mutation
	regOff := hir.Reg(fn.NumRegs)
	blockOff := hir.BlockID(len(fn.Blocks) + 1) // +1 for the continuation block
	fn.NumRegs += callee.NumRegs

	// Continuation block: instructions after the call + original term.
	cont := hir.BlockID(len(fn.Blocks))
	contBlk := hir.Block{
		Instrs: append([]hir.Instr(nil), fn.Blocks[b].Instrs[ii+1:]...),
		Term:   fn.Blocks[b].Term,
	}
	fn.Blocks = append(fn.Blocks, contBlk)

	// Truncate the call block: keep instrs before the call, add parameter
	// moves, then jump into the (renamed) callee entry.
	head := append([]hir.Instr(nil), fn.Blocks[b].Instrs[:ii]...)
	for p := 0; p < callee.NumParams; p++ {
		var src hir.Instr
		if p < len(call.Args) {
			src = hir.Instr{Op: hir.OpMov, Dst: regOff + hir.Reg(p), A: call.Args[p]}
		} else {
			src = hir.Instr{Op: hir.OpConst, Dst: regOff + hir.Reg(p), Const: hir.None}
		}
		head = append(head, src)
	}
	fn.Blocks[b].Instrs = head
	fn.Blocks[b].Term = hir.Term{Kind: hir.TermJump, To: blockOff}

	// Splice renamed callee blocks.
	clone := callee.Clone()
	for ci := range clone.Blocks {
		cb := clone.Blocks[ci]
		for j := range cb.Instrs {
			renameRegs(&cb.Instrs[j], regOff)
		}
		switch cb.Term.Kind {
		case hir.TermJump:
			cb.Term.To += blockOff
		case hir.TermBranch:
			cb.Term.Cond += regOff
			cb.Term.To += blockOff
			cb.Term.Else += blockOff
		case hir.TermReturn:
			// Return becomes: dst = ret (or None); jump cont.
			if call.Dst != hir.NoReg {
				if cb.Term.Ret != hir.NoReg {
					cb.Instrs = append(cb.Instrs, hir.Instr{Op: hir.OpMov, Dst: call.Dst, A: cb.Term.Ret + regOff})
				} else {
					cb.Instrs = append(cb.Instrs, hir.Instr{Op: hir.OpConst, Dst: call.Dst, Const: hir.None})
				}
			}
			cb.Term = hir.Term{Kind: hir.TermJump, To: cont}
		}
		fn.Blocks = append(fn.Blocks, cb)
	}
}

func renameRegs(in *hir.Instr, off hir.Reg) {
	bump := func(r hir.Reg) hir.Reg {
		if r == hir.NoReg {
			return r
		}
		return r + off
	}
	in.Dst = bump(in.Dst)
	in.A = bump(in.A)
	in.B = bump(in.B)
	for i := range in.Args {
		in.Args[i] = bump(in.Args[i])
	}
}
