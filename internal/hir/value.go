// Package hir defines a small handler intermediate representation: the
// code form on which the paper's compiler optimizations (section 3.2.2 —
// inlining, constant propagation, dead-code elimination, redundant-code
// elimination) operate. The paper's authors edited C sources by hand; the
// mechanical analog here is handlers written as HIR functions, which the
// optimizer merges, splices raise sites into (subsumption), and cleans up
// with the passes in package opt.
//
// HIR is a register machine over basic blocks. Registers are mutable and
// function-scoped (not SSA); the dataflow passes handle re-assignment.
// The representation is deliberately independent of the event runtime:
// raises and halts surface as callbacks in the execution Env, so the same
// code can run under an interpreter, be compiled to closures, or be
// statically analyzed.
package hir

import (
	"bytes"
	"fmt"
	"strconv"
)

// Kind enumerates HIR value kinds.
type Kind uint8

const (
	// KNone is the absent value (a failed argument lookup).
	KNone Kind = iota
	KInt
	KBool
	KStr
	KBytes
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KNone:
		return "none"
	case KInt:
		return "int"
	case KBool:
		return "bool"
	case KStr:
		return "str"
	case KBytes:
		return "bytes"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is one HIR runtime value.
type Value struct {
	Kind Kind
	I    int64 // Int payload; Bool as 0/1
	S    string
	B    []byte
}

// None is the absent value.
var None = Value{Kind: KNone}

// IntVal returns an int value.
func IntVal(i int64) Value { return Value{Kind: KInt, I: i} }

// BoolVal returns a bool value.
func BoolVal(b bool) Value {
	if b {
		return Value{Kind: KBool, I: 1}
	}
	return Value{Kind: KBool}
}

// StrVal returns a string value.
func StrVal(s string) Value { return Value{Kind: KStr, S: s} }

// BytesVal returns a bytes value (the slice is not copied).
func BytesVal(b []byte) Value { return Value{Kind: KBytes, B: b} }

// Int reads the value as an integer (bools coerce to 0/1, others to 0).
func (v Value) Int() int64 {
	switch v.Kind {
	case KInt, KBool:
		return v.I
	default:
		return 0
	}
}

// Bool reads the value as a boolean: ints are true when nonzero, strings
// and byte slices when nonempty, None is false.
func (v Value) Bool() bool {
	switch v.Kind {
	case KInt, KBool:
		return v.I != 0
	case KStr:
		return v.S != ""
	case KBytes:
		return len(v.B) != 0
	default:
		return false
	}
}

// Str reads the value as a string ("" unless it is one).
func (v Value) Str() string { return v.S }

// Bytes reads the value as a byte slice (nil unless it is one).
func (v Value) Bytes() []byte { return v.B }

// Equal compares two values structurally.
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case KNone:
		return true
	case KInt, KBool:
		return v.I == w.I
	case KStr:
		return v.S == w.S
	case KBytes:
		return bytes.Equal(v.B, w.B)
	default:
		return false
	}
}

// String renders the value for diagnostics and pass debugging.
func (v Value) String() string {
	switch v.Kind {
	case KNone:
		return "none"
	case KInt:
		return strconv.FormatInt(v.I, 10)
	case KBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KStr:
		return strconv.Quote(v.S)
	case KBytes:
		return fmt.Sprintf("bytes[%d]", len(v.B))
	default:
		return "?"
	}
}

// key returns a map-key form of the value for value numbering. Byte
// slices hash by content.
func (v Value) key() string {
	switch v.Kind {
	case KBytes:
		return "b:" + string(v.B)
	default:
		return v.String()
	}
}
