package video

import (
	"testing"
	"time"

	"eventopt/internal/core"
	"eventopt/internal/ctp"
	"eventopt/internal/profile"
)

func newPlayer(t *testing.T, rate int) *Player {
	t.Helper()
	p, err := NewPlayer(ctp.DefaultConfig(), rate, 900)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPlayerValidation(t *testing.T) {
	if _, err := NewPlayer(ctp.DefaultConfig(), 0, 100); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewPlayer(ctp.DefaultConfig(), 10, -1); err == nil {
		t.Error("negative size accepted")
	}
	bad := ctp.DefaultConfig()
	bad.MTU = 0
	if _, err := NewPlayer(bad, 10, 100); err == nil {
		t.Error("bad protocol config accepted")
	}
}

func TestRunDeliversAllFrames(t *testing.T) {
	p := newPlayer(t, 25)
	res := p.Run(50)
	if res.Stats.FramesSent != 50 {
		t.Errorf("frames = %d", res.Stats.FramesSent)
	}
	if res.Delivered < 50 {
		t.Errorf("delivered = %d, want >= 50 (incl. parity)", res.Delivered)
	}
	if res.Stats.Acked != res.Stats.Transmitted {
		t.Errorf("acked %d != transmitted %d on a lossless link", res.Stats.Acked, res.Stats.Transmitted)
	}
	// 50 frames at 25fps = 2s of virtual time, plus the settling horizon.
	if res.VirtualDuration < 2e9 {
		t.Errorf("virtual duration = %v", res.VirtualDuration)
	}
	if res.EventTime <= 0 {
		t.Error("event time not measured")
	}
	// Controller ran throughout.
	if res.Stats.SamplesRun == 0 {
		t.Error("sampler never ran")
	}
}

func TestDecodeWorkMeasured(t *testing.T) {
	p := newPlayer(t, 10)
	p.DecodeWork = 200000
	res := p.Run(5)
	if res.DecodeTime <= 0 {
		t.Error("decode time not measured")
	}
	if res.BusyTime() != res.EventTime+res.DecodeTime {
		t.Error("BusyTime mismatch")
	}
}

func TestModeledTotalIdleAbsorption(t *testing.T) {
	r := Result{Frames: 10, EventTime: 2 * time.Millisecond, DecodeTime: 3 * time.Millisecond}
	// Large budget: total == budget (idle absorbs busy time).
	if got := r.ModeledTotal(10 * time.Millisecond); got != 100*time.Millisecond {
		t.Errorf("idle-dominated total = %v", got)
	}
	// Tiny budget: total == busy.
	if got := r.ModeledTotal(100 * time.Microsecond); got != 5*time.Millisecond {
		t.Errorf("busy-dominated total = %v", got)
	}
}

func TestTraceGraphMatchesFig5Spine(t *testing.T) {
	p := newPlayer(t, 25)
	entries := p.Trace(60)
	if len(entries) == 0 {
		t.Fatal("no trace")
	}
	// The hot spine must dominate: SegFromUser -> Seg2Net weight equals
	// segments+ (parity raises land inside SegFromUser handlers too).
	sys := p.Sender.Sys
	g := profile.BuildEventGraph(entries)
	e := g.EdgeBetween(sys.Lookup("SegFromUser"), sys.Lookup("Seg2Net"))
	if e == nil || e.Weight < 60 {
		t.Fatalf("hot edge = %+v", e)
	}
}

func TestOptimizeEquivalentResults(t *testing.T) {
	ref := newPlayer(t, 25)
	want := ref.Run(40)

	opt := newPlayer(t, 25)
	plan, err := opt.Optimize(60, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Entries) == 0 {
		t.Fatal("empty plan")
	}
	got := opt.Run(40)
	if got.Stats.FramesSent != want.Stats.FramesSent ||
		got.Stats.Transmitted != want.Stats.Transmitted ||
		got.Stats.Acked != want.Stats.Acked ||
		got.Delivered != want.Delivered {
		t.Errorf("optimized run diverges: %+v vs %+v", got.Stats, want.Stats)
	}
	if opt.Sender.Sys.Stats().FastRuns.Load() == 0 {
		t.Error("no fast runs after optimize")
	}
}

func TestOptimizeFullFusion(t *testing.T) {
	opt := newPlayer(t, 25)
	opts := core.DefaultOptions()
	opts.FullFusion = true
	opts.Partitioned = false
	if _, err := opt.Optimize(60, opts); err != nil {
		t.Fatal(err)
	}
	got := opt.Run(30)
	if got.Stats.FramesSent != 30 || got.Stats.Acked != got.Stats.Transmitted {
		t.Errorf("full-fusion run broken: %+v", got.Stats)
	}
}

func TestPlaybackThroughReceiver(t *testing.T) {
	cfg := ctp.DefaultConfig()
	cfg.LossEvery = 9 // periodic loss: FEC and retransmission both engage
	cfg.FECInterval = 4
	p, err := NewPlayer(cfg, 25, 700)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Playback()
	var lens []int
	r.OnFrame = func(seq int64, payload []byte) { lens = append(lens, len(payload)) }
	res := p.Run(60)
	if res.Playback.Delivered != 60 {
		t.Fatalf("playback delivered = %d, want 60 (stats %+v)", res.Playback.Delivered, res.Playback)
	}
	if res.Playback.Recovered == 0 {
		t.Error("no FEC recoveries under periodic loss")
	}
	for i, l := range lens {
		if l != 700 {
			t.Fatalf("frame %d has %d bytes", i, l)
		}
	}
	// A second Run on the same player keeps delivering in order.
	res2 := p.Run(20)
	if res2.Playback.Delivered != 80 {
		t.Errorf("cumulative delivered = %d", res2.Playback.Delivered)
	}
}

func TestPlaybackWithOptimizedSender(t *testing.T) {
	cfg := ctp.DefaultConfig()
	cfg.FECInterval = 4
	p, err := NewPlayer(cfg, 25, 700)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Optimize(80, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	r := p.Playback() // attach after optimization: syncs to the stream
	res := p.Run(30)
	if res.Playback.Delivered != 30 {
		t.Fatalf("playback delivered = %d (stats %+v, next %d)",
			res.Playback.Delivered, res.Playback, r.Next())
	}
}
