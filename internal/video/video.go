// Package video implements the paper's video player application
// (section 4.2): a frame-paced sender over the CTP composite protocol.
// The player generates frames at a configurable rate, performs a
// deterministic amount of synthetic per-frame "decode" work, and pushes
// each frame through the protocol; the CTP controller, sampler and
// reliability machinery run on the same virtual clock.
//
// The paper measured two quantities (Figs. 10-11): total execution time,
// which at low frame rates is dominated by idle time waiting for the
// next frame, and event-handler time, the CPU actually spent in the
// event paths. Run reports both: event time and decode time are measured
// on the real clock while frame pacing advances virtually, and the
// modeled total assumes idle absorbs slack up to the frame budget —
// reproducing the paper's observation that optimization barely moves the
// total at low rates but wins once the budget tightens.
package video

import (
	"fmt"
	"time"

	"eventopt/internal/core"
	"eventopt/internal/ctp"
	"eventopt/internal/event"
	"eventopt/internal/profile"
	"eventopt/internal/trace"
)

// Player drives frames through a CTP sender.
type Player struct {
	Sender *ctp.Sender
	Clock  *event.VirtualClock

	// FrameRate is frames per (virtual) second.
	FrameRate int
	// FrameSize is the payload bytes per frame.
	FrameSize int
	// KeyInterval makes every Nth frame high-priority (a key frame).
	KeyInterval int
	// DecodeWork is the synthetic per-frame decode cost in arithmetic
	// iterations (real CPU, measured separately from event time).
	DecodeWork int

	frame []byte
	sink  int64 // defeats dead-code elimination of the decode loop
	recv  *ctp.Receiver
}

// NewPlayer builds a player with its own CTP instance on a virtual clock.
// Extra event options (fault policies, domain sharding) pass through to
// the underlying runtime after the clock.
func NewPlayer(cfg ctp.Config, frameRate, frameSize int, opts ...event.Option) (*Player, error) {
	if frameRate <= 0 || frameSize < 0 {
		return nil, fmt.Errorf("video: invalid rate %d / size %d", frameRate, frameSize)
	}
	clock := event.NewVirtualClock()
	s, err := ctp.New(cfg, append([]event.Option{event.WithClock(clock)}, opts...)...)
	if err != nil {
		return nil, err
	}
	p := &Player{
		Sender:      s,
		Clock:       clock,
		FrameRate:   frameRate,
		FrameSize:   frameSize,
		KeyInterval: 10,
		DecodeWork:  0,
		frame:       make([]byte, frameSize),
	}
	for i := range p.frame {
		p.frame[i] = byte(i*31 + 7)
	}
	return p, nil
}

// Result reports one run.
type Result struct {
	Frames    int
	FrameRate int
	// VirtualDuration is the simulated wall-clock span of the run.
	VirtualDuration event.Duration
	// EventTime is real CPU time spent in event dispatch (raise + drain).
	EventTime time.Duration
	// DecodeTime is real CPU time spent in synthetic decode work.
	DecodeTime time.Duration
	// Stats snapshots the protocol counters at the end of the run.
	Stats ctp.Stats
	// Delivered counts segments that reached the receiver.
	Delivered int
	// Playback snapshots the reassembling receiver (in-order frames,
	// FEC recoveries, duplicates) when one is attached via Playback.
	Playback ctp.ReceiverStats
}

// BusyTime is the real CPU consumed per run (event + decode).
func (r Result) BusyTime() time.Duration { return r.EventTime + r.DecodeTime }

// ModeledTotal converts the run into the paper's "total execution time"
// for a given real-time budget per frame: idle absorbs slack, so the
// total is the larger of the pacing budget and the busy time.
func (r Result) ModeledTotal(budgetPerFrame time.Duration) time.Duration {
	budget := time.Duration(r.Frames) * budgetPerFrame
	if busy := r.BusyTime(); busy > budget {
		return busy
	}
	return budget
}

// Playback attaches a reassembling receiver (in-order delivery with FEC
// recovery) so Result.Playback reports what a decoder would actually
// see. Call before the first Run.
func (p *Player) Playback() *ctp.Receiver {
	if p.recv == nil {
		p.recv = p.Sender.AttachReceiver()
	}
	return p.recv
}

// Run pushes n frames at the configured rate and drains the protocol to
// quiescence (bounded by the pacing horizon).
func (p *Player) Run(n int) Result {
	s := p.Sender
	s.Start()
	interval := event.Duration(int64(time.Second) / int64(p.FrameRate))
	base := s.Sys.Now() // horizons are relative: Run may be called repeatedly
	res := Result{Frames: n, FrameRate: p.FrameRate}
	delivered := 0
	s.OnDeliver(func(int64, []byte) { delivered++ })

	start := s.Stats
	for i := 0; i < n; i++ {
		if p.DecodeWork > 0 {
			t0 := time.Now()
			acc := p.sink
			for j := 0; j < p.DecodeWork; j++ {
				acc = acc*1664525 + 1013904223
			}
			p.sink = acc
			res.DecodeTime += time.Since(t0)
		}
		t0 := time.Now()
		s.SendFrame(p.frame, p.KeyInterval > 0 && i%p.KeyInterval == 0)
		s.Sys.DrainFor(base + event.Duration(i+1)*interval)
		res.EventTime += time.Since(t0)
	}
	// Let in-flight acks and timers settle within one extra second.
	t0 := time.Now()
	s.Sys.DrainFor(base + event.Duration(n)*interval + event.Duration(time.Second))
	res.EventTime += time.Since(t0)

	res.VirtualDuration = p.Clock.Now() - base
	res.Stats = diffStats(start, s.Stats)
	res.Delivered = delivered
	if p.recv != nil {
		res.Playback = p.recv.Stats
	}
	return res
}

func diffStats(a, b ctp.Stats) ctp.Stats {
	return ctp.Stats{
		FramesSent:  b.FramesSent - a.FramesSent,
		Segments:    b.Segments - a.Segments,
		Transmitted: b.Transmitted - a.Transmitted,
		Dropped:     b.Dropped - a.Dropped,
		Acked:       b.Acked - a.Acked,
		Retransmits: b.Retransmits - a.Retransmits,
		Timeouts:    b.Timeouts - a.Timeouts,
		Deferred:    b.Deferred - a.Deferred,
		Delivered:   b.Delivered - a.Delivered,
		Resizes:     b.Resizes - a.Resizes,
		SamplesRun:  b.SamplesRun - a.SamplesRun,
	}
}

// Profile runs n frames under instrumentation and returns the profile
// (the paper's separate profiling executions).
func (p *Player) Profile(n int) (*profile.Profile, error) {
	rec := trace.NewRecorder()
	rec.EnableHandlerProfiling()
	p.Sender.Sys.SetTracer(rec)
	p.Run(n)
	p.Sender.Sys.SetTracer(nil)
	return profile.Analyze(rec.Entries())
}

// Trace runs n frames under event-only instrumentation and returns the
// raw trace entries (used to regenerate the Fig. 5 event graph).
func (p *Player) Trace(n int) []trace.Entry {
	rec := trace.NewRecorder()
	p.Sender.Sys.SetTracer(rec)
	p.Run(n)
	p.Sender.Sys.SetTracer(nil)
	return rec.Entries()
}

// Optimize profiles the player and installs the optimizer's plan.
func (p *Player) Optimize(profileFrames int, opts core.Options) (*core.Plan, error) {
	prof, err := p.Profile(profileFrames)
	if err != nil {
		return nil, err
	}
	plan, _, err := core.Apply(p.Sender.Sys, prof, p.Sender.Mod, opts)
	return plan, err
}
