package profile

import (
	"fmt"
	"sort"
	"strings"

	"eventopt/internal/event"
	"eventopt/internal/trace"
)

// EventStats aggregates the handler-level observations for one event.
type EventStats struct {
	Event     event.ID
	EventName string
	// Count is the number of activations observed (with or without
	// handler records).
	Count int
	// HandlerCount is the number of activations that carried handler
	// records (handler profiling enabled).
	HandlerCount int
	// sequences maps an encoded handler sequence to its occurrence count.
	sequences map[string]int
	seqSample map[string][]string
	// raises maps handler name -> encoded sync-raise pattern -> count.
	raises       map[string]map[string]int
	raisesSample map[string][]RaiseRec
}

// Profile is the result of analyzing a trace: the event graph plus
// handler-level statistics.
type Profile struct {
	Entries     []trace.Entry
	Graph       *EventGraph
	Activations []Activation
	stats       map[event.ID]*EventStats
}

// Analyze builds a Profile from raw trace entries. It never fails on an
// empty trace; it returns an error only for structurally inconsistent
// traces (which indicate recorder misuse).
func Analyze(entries []trace.Entry) (*Profile, error) {
	acts, err := BuildActivations(entries)
	if err != nil {
		return nil, err
	}
	p := &Profile{
		Entries:     entries,
		Graph:       BuildEventGraph(entries),
		Activations: acts,
		stats:       make(map[event.ID]*EventStats),
	}
	for _, a := range acts {
		st := p.stats[a.Event]
		if st == nil {
			st = &EventStats{
				Event:        a.Event,
				EventName:    a.EventName,
				sequences:    make(map[string]int),
				seqSample:    make(map[string][]string),
				raises:       make(map[string]map[string]int),
				raisesSample: make(map[string][]RaiseRec),
			}
			p.stats[a.Event] = st
		}
		st.Count++
		if len(a.Handlers) == 0 {
			continue
		}
		st.HandlerCount++
		names := make([]string, len(a.Handlers))
		for i, h := range a.Handlers {
			names[i] = h.Name
		}
		key := strings.Join(names, "\x00")
		st.sequences[key]++
		st.seqSample[key] = names
		for _, h := range a.Handlers {
			var sync []RaiseRec
			for _, r := range h.Raises {
				if r.Mode == event.Sync {
					sync = append(sync, r)
				}
			}
			rkey := encodeRaises(sync)
			m := st.raises[h.Name]
			if m == nil {
				m = make(map[string]int)
				st.raises[h.Name] = m
			}
			m[rkey]++
			st.raisesSample[h.Name+"\x00"+rkey] = sync
		}
	}
	return p, nil
}

func encodeRaises(rs []RaiseRec) string {
	var b strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&b, "%d/%d;", r.Event, r.Mode)
	}
	return b.String()
}

// Stats returns the aggregated statistics for ev (nil if never observed).
func (p *Profile) Stats(ev event.ID) *EventStats { return p.stats[ev] }

// Count reports how many activations of ev the trace contains.
func (p *Profile) Count(ev event.ID) int {
	if st := p.stats[ev]; st != nil {
		return st.Count
	}
	return 0
}

// HotEvents returns the events with at least min activations, most
// frequent first.
func (p *Profile) HotEvents(min int) []event.ID {
	var out []event.ID
	for ev, st := range p.stats {
		if st.Count >= min {
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := p.stats[out[i]].Count, p.stats[out[j]].Count
		if ci != cj {
			return ci > cj
		}
		return out[i] < out[j]
	})
	return out
}

// StableHandlers reports the handler sequence of ev if every profiled
// activation of ev executed the same sequence, along with true; otherwise
// (no handler profiles, or divergent sequences) it reports nil, false.
// A stable sequence is the precondition for building a super-handler from
// profile data.
func (p *Profile) StableHandlers(ev event.ID) ([]string, bool) {
	st := p.stats[ev]
	if st == nil || st.HandlerCount == 0 || len(st.sequences) != 1 {
		return nil, false
	}
	for key := range st.sequences {
		return st.seqSample[key], true
	}
	return nil, false
}

// StableSyncRaises reports the sequence of events that handler h of event
// ev synchronously raised, if that sequence was identical on every
// profiled run of the handler. It is the evidence subsumption needs: a
// stable nested raise can be replaced by the inlined handler code of the
// nested event (Figs. 8-9).
func (p *Profile) StableSyncRaises(ev event.ID, handler string) ([]event.ID, bool) {
	st := p.stats[ev]
	if st == nil {
		return nil, false
	}
	m := st.raises[handler]
	if len(m) != 1 {
		return nil, false
	}
	for key := range m {
		rs := st.raisesSample[handler+"\x00"+key]
		out := make([]event.ID, len(rs))
		for i, r := range rs {
			out[i] = r.Event
		}
		return out, true
	}
	return nil, false
}

// DominantSyncRaises reports the most frequent synchronous-raise pattern
// of handler h of event ev together with its share of the handler's
// profiled runs. It powers the paper's section 5 speculative extension:
// when no pattern is universal (StableSyncRaises fails), the dominant
// pattern — "event A is followed by B 90% of the time" — still marks
// worthwhile chain extensions, because segment guards plus per-raise
// dispatch keep the minority cases on the generic path.
func (p *Profile) DominantSyncRaises(ev event.ID, handler string) ([]event.ID, float64, bool) {
	st := p.stats[ev]
	if st == nil {
		return nil, 0, false
	}
	m := st.raises[handler]
	if len(m) == 0 {
		return nil, 0, false
	}
	total, best := 0, 0
	bestKey := ""
	for key, n := range m {
		total += n
		if n > best || (n == best && key < bestKey) {
			best, bestKey = n, key
		}
	}
	rs := st.raisesSample[handler+"\x00"+bestKey]
	out := make([]event.ID, len(rs))
	for i, r := range rs {
		out[i] = r.Event
	}
	return out, float64(best) / float64(total), true
}

// SyncRaiseShares reports, for handler h of event ev, the fraction of
// its profiled runs in which it synchronously raised each event at least
// once. This is the evidence behind the section 5 speculative extension
// ("event A is followed by B 90% of the time"): events whose share meets
// a threshold are worth covering speculatively, since a covered segment
// costs nothing on the runs that do not raise it.
func (p *Profile) SyncRaiseShares(ev event.ID, handler string) map[event.ID]float64 {
	st := p.stats[ev]
	if st == nil {
		return nil
	}
	m := st.raises[handler]
	if len(m) == 0 {
		return nil
	}
	total := 0
	counts := make(map[event.ID]int)
	for key, n := range m {
		total += n
		seen := make(map[event.ID]bool)
		for _, r := range st.raisesSample[handler+"\x00"+key] {
			if !seen[r.Event] {
				seen[r.Event] = true
				counts[r.Event] += n
			}
		}
	}
	out := make(map[event.ID]float64, len(counts))
	for x, n := range counts {
		out[x] = float64(n) / float64(total)
	}
	return out
}

// SequenceCounts returns, for diagnostics, the distinct handler sequences
// of ev with their occurrence counts, most frequent first.
func (p *Profile) SequenceCounts(ev event.ID) []SeqCount {
	st := p.stats[ev]
	if st == nil {
		return nil
	}
	out := make([]SeqCount, 0, len(st.sequences))
	for key, n := range st.sequences {
		out = append(out, SeqCount{Handlers: st.seqSample[key], Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return strings.Join(out[i].Handlers, ",") < strings.Join(out[j].Handlers, ",")
	})
	return out
}

// SeqCount pairs a handler sequence with its occurrence count.
type SeqCount struct {
	Handlers []string
	Count    int
}

// Summary renders a human-readable overview of the profile: events by
// frequency with their stable handler sequences.
func (p *Profile) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile: %d trace entries, %d events, %d edges, %d activations\n",
		len(p.Entries), p.Graph.NumNodes(), p.Graph.NumEdges(), len(p.Activations))
	for _, ev := range p.HotEvents(1) {
		st := p.stats[ev]
		fmt.Fprintf(&b, "  %-24s x%-6d", st.EventName, st.Count)
		if hs, ok := p.StableHandlers(ev); ok {
			fmt.Fprintf(&b, " handlers: %s", strings.Join(hs, ", "))
		} else if st.HandlerCount > 0 {
			fmt.Fprintf(&b, " handlers: UNSTABLE (%d variants)", len(st.sequences))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
