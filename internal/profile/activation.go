package profile

import (
	"fmt"

	"eventopt/internal/event"
	"eventopt/internal/trace"
)

// RaiseRec records one event raised from inside a handler, in order.
type RaiseRec struct {
	Event event.ID
	Mode  event.Mode
}

// HandlerRun is one handler invocation inside an activation.
type HandlerRun struct {
	Name   string
	Raises []RaiseRec
}

// Activation is one reconstructed event activation: the event, how it was
// raised, and the handlers that ran (present only for events with handler
// profiling enabled).
type Activation struct {
	Event     event.ID
	EventName string
	Mode      event.Mode
	Depth     int
	Handlers  []HandlerRun
}

// BuildActivations reconstructs the activation forest of a trace. The
// Depth fields recorded by the runtime make the reconstruction
// unambiguous even when handler profiling is enabled only for a subset of
// events: an entry at depth d always belongs to the activation frame at
// stack height d.
func BuildActivations(entries []trace.Entry) ([]Activation, error) {
	type frame struct {
		act  *Activation
		open bool // a handler is currently open in this frame
	}
	var all []*Activation
	var stack []*frame
	for i, e := range entries {
		switch e.Kind {
		case trace.EventRaised:
			if e.Depth > len(stack) {
				return nil, fmt.Errorf("profile: entry %d: depth %d with stack %d", i, e.Depth, len(stack))
			}
			stack = stack[:e.Depth]
			act := &Activation{Event: e.Event, EventName: e.EventName, Mode: e.Mode, Depth: e.Depth}
			all = append(all, act)
			// Attribute a nested synchronous raise to the handler that
			// is open in the parent frame, if any.
			if e.Depth > 0 && e.Mode == event.Sync {
				p := stack[e.Depth-1]
				if p.open && len(p.act.Handlers) > 0 {
					h := &p.act.Handlers[len(p.act.Handlers)-1]
					h.Raises = append(h.Raises, RaiseRec{Event: e.Event, Mode: e.Mode})
				}
			}
			stack = append(stack, &frame{act: act})
		case trace.HandlerEnter:
			if e.Depth >= len(stack) {
				return nil, fmt.Errorf("profile: entry %d: handler at depth %d with stack %d", i, e.Depth, len(stack))
			}
			stack = stack[:e.Depth+1]
			f := stack[e.Depth]
			if f.act.Event != e.Event {
				return nil, fmt.Errorf("profile: entry %d: handler of event %d inside activation of %d", i, e.Event, f.act.Event)
			}
			f.act.Handlers = append(f.act.Handlers, HandlerRun{Name: e.Handler})
			f.open = true
		case trace.HandlerExit:
			if e.Depth >= len(stack) {
				return nil, fmt.Errorf("profile: entry %d: handler exit at depth %d with stack %d", i, e.Depth, len(stack))
			}
			stack = stack[:e.Depth+1]
			stack[e.Depth].open = false
		}
	}
	out := make([]Activation, len(all))
	for i, a := range all {
		out[i] = *a
	}
	return out, nil
}

// AsyncRaisesOf scans activations for asynchronous raises attributed to
// handlers. Because asynchronous activations are dispatched later, their
// trace entries appear at top level and carry no causal link; this helper
// therefore reports only what can be inferred — it exists so callers can
// see that the answer is empty, mirroring the paper's observation that
// async successors carry no causality information.
func AsyncRaisesOf(acts []Activation) []RaiseRec {
	var out []RaiseRec
	for _, a := range acts {
		for _, h := range a.Handlers {
			for _, r := range h.Raises {
				if r.Mode != event.Sync {
					out = append(out, r)
				}
			}
		}
	}
	return out
}
