package profile

import (
	"eventopt/internal/event"
	"eventopt/internal/telemetry"
)

// FromTelemetry reconstructs an EventGraph from the live telemetry
// layer's sampled graph feed, so the paper's offline analyses — Reduce,
// Paths, Chains, WriteDOT — run unchanged against a running system
// instead of a recorded trace. Edge weights are scaled by the feed's
// sampling period, so they estimate true traversal counts and a
// threshold tuned on offline profiles carries over.
// FromTelemetry tolerates empty and partial snapshots: a feed that has
// sampled nothing yet yields an empty graph (every downstream analysis —
// Reduce, Paths, HotPaths, BuildPlan — treats that as "nothing hot"), and
// malformed rows (non-positive weights, negative IDs, a sync count
// exceeding the total) are dropped or clamped rather than poisoning the
// graph. An adaptive controller's first tick therefore plans a no-op
// instead of misbehaving.
func FromTelemetry(gs telemetry.GraphSnapshot) *EventGraph {
	g := NewEventGraph()
	scale := gs.SampleEvery
	if scale < 1 {
		scale = 1
	}
	for _, e := range gs.Edges {
		e, ok := telemetry.SanitizeEdge(e)
		if !ok {
			continue
		}
		g.AddEdge(event.ID(e.From), event.ID(e.To), int(e.Weight)*scale, int(e.SyncWeight)*scale)
		if e.FromName != "" {
			g.SetName(event.ID(e.From), e.FromName)
		}
		if e.ToName != "" {
			g.SetName(event.ID(e.To), e.ToName)
		}
	}
	return g
}

// GraphProfile wraps an event graph in a Profile so the planner
// (core.BuildPlan) can consume continuous-profiling data. Activation
// counts are estimated from incident edge weights (an event occurred at
// least as often as its heavier side of in- and out-traversals); there
// are no handler-level records, so handler queries report nothing stable
// and chain extension must come from the graph (Options.GraphChains).
func GraphProfile(g *EventGraph) *Profile {
	if g == nil {
		g = NewEventGraph()
	}
	p := &Profile{Graph: g, stats: make(map[event.ID]*EventStats)}
	in := make(map[event.ID]int)
	out := make(map[event.ID]int)
	for _, e := range g.Edges() {
		in[e.To] += e.Weight
		out[e.From] += e.Weight
	}
	for _, ev := range g.Nodes() {
		n := in[ev]
		if out[ev] > n {
			n = out[ev]
		}
		if n <= 0 {
			continue
		}
		p.stats[ev] = &EventStats{Event: ev, EventName: g.Name(ev), Count: n}
	}
	return p
}

// LiveProfile lifts a telemetry graph snapshot directly into a Profile:
// FromTelemetry followed by GraphProfile.
func LiveProfile(gs telemetry.GraphSnapshot) *Profile {
	return GraphProfile(FromTelemetry(gs))
}

// HotPath is one hot event chain extracted from the live graph.
type HotPath struct {
	Events []event.ID `json:"events"`
	Names  []string   `json:"names"`
	Weight int        `json:"weight"` // minimum edge weight along the path (scaled)
}

// HotPaths answers the continuous-profiling query: the maximal paths of
// the threshold-reduced live event graph, hottest first. threshold is
// the paper's reduction threshold t applied to the scaled weights; pass
// 0 to keep every sampled edge. maxPaths caps the result (<= 0 means 16).
func HotPaths(gs telemetry.GraphSnapshot, threshold, maxPaths int) []HotPath {
	if maxPaths <= 0 {
		maxPaths = 16
	}
	g := FromTelemetry(gs)
	reduced := g.Reduce(threshold)
	paths := reduced.Paths(threshold, maxPaths)
	out := make([]HotPath, 0, len(paths))
	for _, p := range paths {
		hp := HotPath{Events: p, Weight: reduced.MinWeight(p)}
		hp.Names = make([]string, len(p))
		for i, ev := range p {
			hp.Names[i] = g.Name(ev)
		}
		out = append(out, hp)
	}
	// Paths already orders deterministically; sort hottest first while
	// keeping that order for ties.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Weight > out[j-1].Weight; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
