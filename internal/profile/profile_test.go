package profile

import (
	"strings"
	"testing"

	"eventopt/internal/event"
	"eventopt/internal/trace"
)

// traceOf runs fn against a fresh traced system and returns the entries.
func traceOf(t *testing.T, build func(s *event.System) func()) []trace.Entry {
	t.Helper()
	s := event.New()
	run := build(s)
	r := trace.NewRecorder()
	r.EnableHandlerProfiling()
	s.SetTracer(r)
	run()
	return r.Entries()
}

func TestBuildActivationsNested(t *testing.T) {
	entries := traceOf(t, func(s *event.System) func() {
		a := s.Define("A")
		b := s.Define("B")
		s.Bind(a, "a1", func(*event.Ctx) {}, event.WithOrder(1))
		s.Bind(a, "a2", func(c *event.Ctx) { c.Raise(b) }, event.WithOrder(2))
		s.Bind(b, "b1", func(*event.Ctx) {})
		return func() { s.Raise(a) }
	})
	acts, err := BuildActivations(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 2 {
		t.Fatalf("activations = %d, want 2", len(acts))
	}
	outer, inner := acts[0], acts[1]
	if outer.EventName != "A" || inner.EventName != "B" {
		t.Fatalf("order wrong: %s, %s", outer.EventName, inner.EventName)
	}
	if len(outer.Handlers) != 2 || outer.Handlers[0].Name != "a1" || outer.Handlers[1].Name != "a2" {
		t.Fatalf("outer handlers = %+v", outer.Handlers)
	}
	// a2 synchronously raised B.
	if len(outer.Handlers[1].Raises) != 1 || outer.Handlers[1].Raises[0].Event != inner.Event {
		t.Errorf("a2 raises = %+v", outer.Handlers[1].Raises)
	}
	if len(outer.Handlers[0].Raises) != 0 {
		t.Errorf("a1 raises = %+v", outer.Handlers[0].Raises)
	}
	if inner.Depth != 1 || outer.Depth != 0 {
		t.Errorf("depths = %d, %d", outer.Depth, inner.Depth)
	}
}

func TestBuildActivationsAsyncNotAttributed(t *testing.T) {
	entries := traceOf(t, func(s *event.System) func() {
		a := s.Define("A")
		b := s.Define("B")
		s.Bind(a, "a1", func(c *event.Ctx) { c.RaiseAsync(b) })
		s.Bind(b, "b1", func(*event.Ctx) {})
		return func() { s.Raise(a); s.Drain() }
	})
	acts, err := BuildActivations(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 2 {
		t.Fatalf("activations = %d", len(acts))
	}
	if len(acts[0].Handlers[0].Raises) != 0 {
		t.Error("async raise wrongly attributed as causal")
	}
	if acts[1].Mode != event.Async {
		t.Errorf("mode = %v", acts[1].Mode)
	}
	if rs := AsyncRaisesOf(acts); len(rs) != 0 {
		t.Errorf("AsyncRaisesOf = %v", rs)
	}
}

func TestBuildActivationsMalformed(t *testing.T) {
	bad := [][]trace.Entry{
		{{Kind: trace.EventRaised, Event: 0, EventName: "A", Depth: 3}},
		{{Kind: trace.HandlerEnter, Event: 0, EventName: "A", Handler: "h", Depth: 0}},
		{
			{Kind: trace.EventRaised, Event: 0, EventName: "A", Depth: 0},
			{Kind: trace.HandlerEnter, Event: 1, EventName: "B", Handler: "h", Depth: 0},
		},
		{{Kind: trace.HandlerExit, Event: 0, EventName: "A", Handler: "h", Depth: 0}},
	}
	for i, entries := range bad {
		if _, err := BuildActivations(entries); err == nil {
			t.Errorf("case %d: no error for malformed trace", i)
		}
	}
}

func TestAnalyzeStableHandlers(t *testing.T) {
	entries := traceOf(t, func(s *event.System) func() {
		a := s.Define("A")
		s.Bind(a, "h1", func(*event.Ctx) {}, event.WithOrder(1))
		s.Bind(a, "h2", func(*event.Ctx) {}, event.WithOrder(2))
		return func() {
			for i := 0; i < 5; i++ {
				s.Raise(a)
			}
		}
	})
	p, err := Analyze(entries)
	if err != nil {
		t.Fatal(err)
	}
	if p.Count(0) != 5 {
		t.Errorf("Count = %d", p.Count(0))
	}
	hs, ok := p.StableHandlers(0)
	if !ok || len(hs) != 2 || hs[0] != "h1" || hs[1] != "h2" {
		t.Errorf("StableHandlers = %v, %v", hs, ok)
	}
	if _, ok := p.StableHandlers(event.ID(9)); ok {
		t.Error("unknown event should not be stable")
	}
	if st := p.Stats(0); st == nil || st.HandlerCount != 5 {
		t.Errorf("Stats = %+v", st)
	}
	if p.Stats(event.ID(9)) != nil {
		t.Error("Stats of unknown should be nil")
	}
}

func TestAnalyzeUnstableHandlers(t *testing.T) {
	s := event.New()
	a := s.Define("A")
	var b event.Binding
	bound := false
	rebind := func() {
		if bound {
			s.Unbind(b)
		} else {
			b = s.Bind(a, "extra", func(*event.Ctx) {}, event.WithOrder(5))
		}
		bound = !bound
	}
	s.Bind(a, "h1", func(*event.Ctx) {}, event.WithOrder(1))
	r := trace.NewRecorder()
	r.EnableHandlerProfiling()
	s.SetTracer(r)
	s.Raise(a)
	rebind()
	s.Raise(a)
	p, err := Analyze(r.Entries())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.StableHandlers(a); ok {
		t.Error("divergent sequences reported stable")
	}
	seqs := p.SequenceCounts(a)
	if len(seqs) != 2 {
		t.Errorf("SequenceCounts = %+v", seqs)
	}
	if !strings.Contains(p.Summary(), "UNSTABLE") {
		t.Error("Summary should flag instability")
	}
}

func TestAnalyzeStableSyncRaises(t *testing.T) {
	entries := traceOf(t, func(s *event.System) func() {
		a := s.Define("A")
		b := s.Define("B")
		c := s.Define("C")
		s.Bind(a, "driver", func(cx *event.Ctx) {
			cx.Raise(b)
			cx.Raise(c)
		})
		s.Bind(b, "bh", func(*event.Ctx) {})
		s.Bind(c, "ch", func(*event.Ctx) {})
		return func() {
			for i := 0; i < 3; i++ {
				s.Raise(a)
			}
		}
	})
	p, err := Analyze(entries)
	if err != nil {
		t.Fatal(err)
	}
	rs, ok := p.StableSyncRaises(0, "driver")
	if !ok || len(rs) != 2 || rs[0] != 1 || rs[1] != 2 {
		t.Errorf("StableSyncRaises = %v, %v", rs, ok)
	}
	if _, ok := p.StableSyncRaises(5, "x"); ok {
		t.Error("unknown event stable raises")
	}
	if _, ok := p.StableSyncRaises(0, "nope"); ok {
		t.Error("unknown handler stable raises")
	}
}

func TestAnalyzeUnstableSyncRaises(t *testing.T) {
	s := event.New()
	a := s.Define("A")
	b := s.Define("B")
	n := 0
	s.Bind(a, "driver", func(cx *event.Ctx) {
		n++
		if n%2 == 0 {
			cx.Raise(b)
		}
	})
	s.Bind(b, "bh", func(*event.Ctx) {})
	r := trace.NewRecorder()
	r.EnableHandlerProfiling()
	s.SetTracer(r)
	s.Raise(a)
	s.Raise(a)
	p, err := Analyze(r.Entries())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.StableSyncRaises(a, "driver"); ok {
		t.Error("divergent raise pattern reported stable")
	}
}

func TestHotEvents(t *testing.T) {
	entries := []trace.Entry{
		evt(0, "A", event.Sync, 0), evt(0, "A", event.Sync, 0), evt(0, "A", event.Sync, 0),
		evt(1, "B", event.Sync, 0),
	}
	p, err := Analyze(entries)
	if err != nil {
		t.Fatal(err)
	}
	hot := p.HotEvents(2)
	if len(hot) != 1 || hot[0] != 0 {
		t.Errorf("HotEvents(2) = %v", hot)
	}
	all := p.HotEvents(1)
	if len(all) != 2 || all[0] != 0 {
		t.Errorf("HotEvents(1) = %v", all)
	}
}

func TestHandlerGraph(t *testing.T) {
	entries := traceOf(t, func(s *event.System) func() {
		a := s.Define("A")
		b := s.Define("B")
		s.Bind(a, "a1", func(*event.Ctx) {}, event.WithOrder(1))
		s.Bind(a, "a2", func(c *event.Ctx) { c.Raise(b) }, event.WithOrder(2))
		s.Bind(b, "b1", func(*event.Ctx) {})
		return func() { s.Raise(a); s.Raise(a) }
	})
	g := BuildHandlerGraph(entries)
	a1 := HandlerNode{EventName: "A", Handler: "a1"}
	a2 := HandlerNode{EventName: "A", Handler: "a2"}
	b1 := HandlerNode{EventName: "B", Handler: "b1"}
	if e := g.EdgeBetween(a1, a2); e == nil || e.Weight != 2 {
		t.Errorf("a1->a2 = %+v", e)
	}
	if e := g.EdgeBetween(a2, b1); e == nil || e.Weight != 2 {
		t.Errorf("a2->b1 = %+v", e)
	}
	// b1 back to a1 happens once (between the two raises).
	if e := g.EdgeBetween(b1, a1); e == nil || e.Weight != 1 {
		t.Errorf("b1->a1 = %+v", e)
	}
	if len(g.Nodes()) != 3 {
		t.Errorf("nodes = %v", g.Nodes())
	}
	if g.NumEdges() != 3 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	runs := g.ContiguousRuns()
	if runs["A"] != 2 {
		t.Errorf("ContiguousRuns[A] = %d", runs["A"])
	}
	if !strings.Contains(g.String(), "A/a1 -> A/a2 [2]") {
		t.Errorf("String() = %q", g.String())
	}
	var sb strings.Builder
	if err := g.WriteDOT(&sb, "handlers"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "cluster_0") {
		t.Error("handler DOT missing clusters")
	}
}

func TestHandlerGraphEmpty(t *testing.T) {
	g := BuildHandlerGraph(nil)
	if g.NumEdges() != 0 || len(g.Nodes()) != 0 {
		t.Error("empty handler graph expected")
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	p, err := Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Graph.NumNodes() != 0 || len(p.Activations) != 0 {
		t.Error("empty profile expected")
	}
	if !strings.Contains(p.Summary(), "0 trace entries") {
		t.Errorf("Summary = %q", p.Summary())
	}
}
