// Package profile analyzes event traces into the structures the paper's
// optimizer consumes (section 3.1): the event graph built by the
// GraphBuilder algorithm (Fig. 4), its threshold-reduced form (Fig. 6),
// event paths and event chains (section 3.2.1), and the handler graph with
// the nesting information that drives subsumption (Figs. 8-9).
package profile

import (
	"fmt"
	"sort"
	"strings"

	"eventopt/internal/event"
	"eventopt/internal/trace"
)

// EdgeKey identifies a directed edge between two events.
type EdgeKey struct {
	From, To event.ID
}

// Edge is one weighted edge of an event graph. Weight counts how many
// times To immediately followed From in the trace. SyncWeight counts the
// subset of those occurrences in which To was raised synchronously — only
// those justify a causality inference (section 3.1: an asynchronous
// successor "may not indicate causality").
type Edge struct {
	From, To   event.ID
	Weight     int
	SyncWeight int
}

// AsyncWeight counts occurrences where To was raised asynchronously or as
// a timed event.
func (e *Edge) AsyncWeight() int { return e.Weight - e.SyncWeight }

// Sync reports whether every observed traversal of the edge activated To
// synchronously.
func (e *Edge) Sync() bool { return e.SyncWeight == e.Weight }

// EventGraph summarizes the event sequences of a trace.
type EventGraph struct {
	names map[event.ID]string
	edges map[EdgeKey]*Edge
	succ  map[event.ID][]event.ID // sorted lazily on demand
	pred  map[event.ID][]event.ID
	dirty bool
}

// NewEventGraph returns an empty graph.
func NewEventGraph() *EventGraph {
	return &EventGraph{
		names: make(map[event.ID]string),
		edges: make(map[EdgeKey]*Edge),
	}
}

// BuildEventGraph runs the GraphBuilder algorithm of Fig. 4 over the
// EventRaised entries of a trace: for each adjacent pair (prev, cur) it
// inserts or bumps the edge prev→cur; the mode of cur classifies the
// traversal as synchronous or asynchronous.
func BuildEventGraph(entries []trace.Entry) *EventGraph {
	g := NewEventGraph()
	first := true
	var prev trace.Entry
	for _, e := range entries {
		if e.Kind != trace.EventRaised {
			continue
		}
		g.names[e.Event] = e.EventName
		if first {
			prev, first = e, false
			continue
		}
		g.addEdge(prev.Event, e.Event, e.Mode == event.Sync)
		prev = e
	}
	return g
}

func (g *EventGraph) addEdge(from, to event.ID, sync bool) {
	k := EdgeKey{From: from, To: to}
	e := g.edges[k]
	if e == nil {
		e = &Edge{From: from, To: to}
		g.edges[k] = e
	}
	e.Weight++
	if sync {
		e.SyncWeight++
	}
	g.dirty = true
}

// AddEdge inserts (or reinforces) an edge directly; it exists for tests
// and for constructing graphs from external data. Node names must be
// registered with SetName.
func (g *EventGraph) AddEdge(from, to event.ID, weight, syncWeight int) {
	if weight <= 0 {
		return
	}
	k := EdgeKey{From: from, To: to}
	e := g.edges[k]
	if e == nil {
		e = &Edge{From: from, To: to}
		g.edges[k] = e
	}
	e.Weight += weight
	e.SyncWeight += syncWeight
	g.dirty = true
}

// SetName registers the display name of a node.
func (g *EventGraph) SetName(ev event.ID, name string) {
	g.names[ev] = name
	g.dirty = true
}

// Name returns the display name of ev (its numeric form when unknown).
func (g *EventGraph) Name(ev event.ID) string {
	if n, ok := g.names[ev]; ok {
		return n
	}
	return fmt.Sprintf("ev%d", ev)
}

// NumNodes reports the number of distinct events appearing in the graph
// (as endpoint of at least one edge, or name-registered).
func (g *EventGraph) NumNodes() int { return len(g.Nodes()) }

// NumEdges reports the number of distinct edges.
func (g *EventGraph) NumEdges() int { return len(g.edges) }

// TotalWeight sums all edge weights; for a graph built from a trace it
// equals len(events)-1.
func (g *EventGraph) TotalWeight() int {
	t := 0
	for _, e := range g.edges {
		t += e.Weight
	}
	return t
}

// Nodes returns all node IDs in ascending order.
func (g *EventGraph) Nodes() []event.ID {
	seen := make(map[event.ID]bool, len(g.names))
	for ev := range g.names {
		seen[ev] = true
	}
	for k := range g.edges {
		seen[k.From] = true
		seen[k.To] = true
	}
	out := make([]event.ID, 0, len(seen))
	for ev := range seen {
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EdgeBetween returns the edge from→to, or nil.
func (g *EventGraph) EdgeBetween(from, to event.ID) *Edge {
	return g.edges[EdgeKey{From: from, To: to}]
}

// Edges returns all edges sorted by (From, To) for deterministic output.
func (g *EventGraph) Edges() []*Edge {
	out := make([]*Edge, 0, len(g.edges))
	for _, e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

func (g *EventGraph) rebuildAdj() {
	if !g.dirty && g.succ != nil {
		return
	}
	g.succ = make(map[event.ID][]event.ID)
	g.pred = make(map[event.ID][]event.ID)
	for _, e := range g.Edges() {
		g.succ[e.From] = append(g.succ[e.From], e.To)
		g.pred[e.To] = append(g.pred[e.To], e.From)
	}
	g.dirty = false
}

// Successors returns the targets of all out-edges of ev, sorted.
func (g *EventGraph) Successors(ev event.ID) []event.ID {
	g.rebuildAdj()
	return g.succ[ev]
}

// Predecessors returns the sources of all in-edges of ev, sorted.
func (g *EventGraph) Predecessors(ev event.ID) []event.ID {
	g.rebuildAdj()
	return g.pred[ev]
}

// Reduce returns the reduced event graph for threshold t: the subgraph
// containing exactly the edges of weight >= t (section 3.1 / Fig. 6).
// Node names carry over; nodes left without edges disappear.
func (g *EventGraph) Reduce(t int) *EventGraph {
	r := NewEventGraph()
	for k, e := range g.edges {
		if e.Weight >= t {
			r.edges[k] = &Edge{From: e.From, To: e.To, Weight: e.Weight, SyncWeight: e.SyncWeight}
			r.names[e.From] = g.Name(e.From)
			r.names[e.To] = g.Name(e.To)
		}
	}
	r.dirty = true
	return r
}

// Path is a sequence of events along graph edges.
type Path []event.ID

// String renders the path with node names from g.
func (p Path) String(g *EventGraph) string {
	parts := make([]string, len(p))
	for i, ev := range p {
		parts[i] = g.Name(ev)
	}
	return strings.Join(parts, " -> ")
}

// MinWeight returns the smallest edge weight along the path (0 if the
// path has fewer than two nodes or uses a missing edge).
func (g *EventGraph) MinWeight(p Path) int {
	if len(p) < 2 {
		return 0
	}
	min := 0
	for i := 1; i < len(p); i++ {
		e := g.EdgeBetween(p[i-1], p[i])
		if e == nil {
			return 0
		}
		if min == 0 || e.Weight < min {
			min = e.Weight
		}
	}
	return min
}

// Paths extracts event paths of weight t: maximal simple paths of the
// graph reduced by t. Per section 3.1 the reduced graph is small, so a
// bounded DFS enumerating maximal simple paths is adequate; maxPaths
// bounds the enumeration defensively (<=0 means a default of 256).
func (g *EventGraph) Paths(t, maxPaths int) []Path {
	if maxPaths <= 0 {
		maxPaths = 256
	}
	r := g.Reduce(t)
	r.rebuildAdj()

	// Roots: nodes with no in-edges in the reduced graph; if the whole
	// graph is cyclic, fall back to every node.
	var roots []event.ID
	for _, n := range r.Nodes() {
		if len(r.pred[n]) == 0 {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		roots = r.Nodes()
	}

	var paths []Path
	seen := make(map[string]bool)
	var cur Path
	onPath := make(map[event.ID]bool)
	var dfs func(n event.ID)
	dfs = func(n event.ID) {
		if len(paths) >= maxPaths {
			return
		}
		cur = append(cur, n)
		onPath[n] = true
		extended := false
		for _, nx := range r.succ[n] {
			if onPath[nx] {
				continue
			}
			extended = true
			dfs(nx)
		}
		if !extended && len(cur) > 1 {
			key := fmt.Sprint(cur)
			if !seen[key] {
				seen[key] = true
				paths = append(paths, append(Path(nil), cur...))
			}
		}
		onPath[n] = false
		cur = cur[:len(cur)-1]
	}
	for _, root := range roots {
		dfs(root)
	}
	sort.Slice(paths, func(i, j int) bool {
		wi, wj := r.MinWeight(paths[i]), r.MinWeight(paths[j])
		if wi != wj {
			return wi > wj
		}
		return paths[i].String(r) < paths[j].String(r)
	})
	return paths
}

// Chains extracts event chains per section 3.2.1: maximal paths
// v1..vk such that every vertex except possibly vk has exactly one
// successor edge, that edge is synchronous on every observed traversal,
// and the edge into vk is synchronous. Chains denote event sequences
// guaranteed to occur when the head occurs, so they are the unit of
// cross-event handler merging. Asynchronous edges never participate.
func (g *EventGraph) Chains() []Path {
	g.rebuildAdj()

	// next[v] = w iff v has exactly one successor edge and it is sync.
	next := make(map[event.ID]event.ID)
	for _, v := range g.Nodes() {
		succ := g.succ[v]
		if len(succ) != 1 {
			continue
		}
		e := g.EdgeBetween(v, succ[0])
		if e.Sync() {
			next[v] = succ[0]
		}
	}

	// Heads: vertices with a chain-successor that are not themselves the
	// chain-successor of another vertex.
	var heads []event.ID
	for v := range next {
		pred := false
		for p, w := range next {
			if w == v && p != v {
				pred = true
				break
			}
		}
		if !pred {
			heads = append(heads, v)
		}
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })

	var chains []Path
	for _, h := range heads {
		p := Path{h}
		visited := map[event.ID]bool{h: true}
		for {
			w, ok := next[p[len(p)-1]]
			if !ok || visited[w] {
				break
			}
			p = append(p, w)
			visited[w] = true
		}
		if len(p) >= 2 {
			chains = append(chains, p)
		}
	}
	return chains
}

// Chain is an event chain with per-link activation modes: Async[i]
// reports whether the link into Events[i] is asynchronous in the
// profile (Async[0] is always false — a chain head has no incoming
// link). Chains() callers that only merge synchronous chains keep using
// Path; ChainsAsync returns these richer records.
type Chain struct {
	Events Path
	Async  []bool
}

// ChainsAsync extracts chains like Chains but may extend a chain across
// an asynchronous (or mixed) edge when the successor overwhelmingly
// follows the producer: the single successor edge v->w also carries at
// least share of w's total incoming weight, so an activation of w is,
// with high probability, caused by v. Those links are marked
// asynchronous in the result; the planner turns them into async-entry
// segments whose raise is speculatively coalesced at run time
// (paper §5). share <= 0 selects the default of 0.9; purely synchronous
// chains are returned unchanged (Chains() semantics), so with no async
// edges the two functions agree.
func (g *EventGraph) ChainsAsync(share float64) []Chain {
	if share <= 0 {
		share = 0.9
	}
	g.rebuildAdj()

	// Total incoming weight per vertex, for the dominance test.
	inWeight := make(map[event.ID]int)
	for _, e := range g.Edges() {
		inWeight[e.To] += e.Weight
	}

	// next[v] = w iff v has exactly one successor edge and that edge is
	// either synchronous (the classic chain link) or async-dominant (w
	// overwhelmingly follows v). async[v] marks the latter.
	next := make(map[event.ID]event.ID)
	async := make(map[event.ID]bool)
	for _, v := range g.Nodes() {
		succ := g.succ[v]
		if len(succ) != 1 {
			continue
		}
		e := g.EdgeBetween(v, succ[0])
		switch {
		case e.Sync():
			next[v] = succ[0]
		case float64(e.Weight) >= share*float64(inWeight[succ[0]]):
			next[v] = succ[0]
			async[v] = true
		}
	}

	var heads []event.ID
	for v := range next {
		pred := false
		for p, w := range next {
			if w == v && p != v {
				pred = true
				break
			}
		}
		if !pred {
			heads = append(heads, v)
		}
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })

	reached := make(map[event.ID]bool)
	walk := func(h event.ID) Chain {
		c := Chain{Events: Path{h}, Async: []bool{false}}
		visited := map[event.ID]bool{h: true}
		reached[h] = true
		for {
			v := c.Events[len(c.Events)-1]
			w, ok := next[v]
			if !ok || visited[w] {
				break
			}
			c.Events = append(c.Events, w)
			c.Async = append(c.Async, async[v])
			visited[w] = true
			reached[w] = true
		}
		return c
	}

	var chains []Chain
	for _, h := range heads {
		if c := walk(h); len(c.Events) >= 2 {
			chains = append(chains, c)
		}
	}

	// Admitting async links can close cycles the sync-only walk never
	// forms (a ping-pong stream records both a -> b and its async
	// adjacency b ~> a), and a cycle has no head, so the pass above would
	// silently drop its chain — including the synchronous prefix Chains()
	// used to find. Break each leftover cycle at an async link: the
	// smallest vertex entered asynchronously becomes the head, so the
	// dropped link is speculative adjacency, never a synchronous raise.
	// Purely synchronous cycles stay chain-less (Chains() semantics).
	var rest []event.ID
	for v := range next {
		if !reached[v] {
			rest = append(rest, v)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	for _, v := range rest {
		if reached[v] {
			continue
		}
		cyc := Path{v}
		for w := next[v]; w != v; w = next[w] {
			cyc = append(cyc, w)
		}
		head, found := event.ID(0), false
		for i, u := range cyc {
			pred := cyc[(i+len(cyc)-1)%len(cyc)]
			if async[pred] && (!found || u < head) {
				head, found = u, true
			}
		}
		if !found {
			for _, u := range cyc {
				reached[u] = true
			}
			continue
		}
		if c := walk(head); len(c.Events) >= 2 {
			chains = append(chains, c)
		}
	}
	return chains
}

// String renders the chain with "->" for synchronous links and "~>" for
// asynchronous ones.
func (c Chain) String(g *EventGraph) string {
	var b strings.Builder
	for i, ev := range c.Events {
		if i > 0 {
			if c.Async[i] {
				b.WriteString(" ~> ")
			} else {
				b.WriteString(" -> ")
			}
		}
		b.WriteString(g.Name(ev))
	}
	return b.String()
}
