package profile

import (
	"strings"
	"testing"
	"testing/quick"

	"eventopt/internal/event"
	"eventopt/internal/trace"
)

// evt builds an EventRaised entry.
func evt(id event.ID, name string, mode event.Mode, depth int) trace.Entry {
	return trace.Entry{Kind: trace.EventRaised, Event: id, EventName: name, Mode: mode, Depth: depth}
}

func TestBuildEventGraphFig4(t *testing.T) {
	// Trace: A B A B C — edges A→B (2), B→A (1), B→C (1).
	entries := []trace.Entry{
		evt(0, "A", event.Sync, 0),
		evt(1, "B", event.Sync, 0),
		evt(0, "A", event.Sync, 0),
		evt(1, "B", event.Sync, 0),
		evt(2, "C", event.Async, 0),
	}
	g := BuildEventGraph(entries)
	if g.NumNodes() != 3 {
		t.Errorf("NumNodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	ab := g.EdgeBetween(0, 1)
	if ab == nil || ab.Weight != 2 || ab.SyncWeight != 2 || !ab.Sync() {
		t.Errorf("A->B = %+v", ab)
	}
	bc := g.EdgeBetween(1, 2)
	if bc == nil || bc.Weight != 1 || bc.SyncWeight != 0 || bc.Sync() || bc.AsyncWeight() != 1 {
		t.Errorf("B->C = %+v", bc)
	}
	if g.EdgeBetween(2, 0) != nil {
		t.Error("C->A should not exist")
	}
	if g.TotalWeight() != len(entries)-1 {
		t.Errorf("TotalWeight = %d, want %d", g.TotalWeight(), len(entries)-1)
	}
	if g.Name(0) != "A" || g.Name(9) != "ev9" {
		t.Errorf("names: %q, %q", g.Name(0), g.Name(9))
	}
}

func TestGraphEmptyAndSingle(t *testing.T) {
	if g := BuildEventGraph(nil); g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Error("empty trace should give empty graph")
	}
	g := BuildEventGraph([]trace.Entry{evt(0, "A", event.Sync, 0)})
	if g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Errorf("single-event graph: nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestGraphIgnoresHandlerEntries(t *testing.T) {
	entries := []trace.Entry{
		evt(0, "A", event.Sync, 0),
		{Kind: trace.HandlerEnter, Event: 0, EventName: "A", Handler: "h", Depth: 0},
		{Kind: trace.HandlerExit, Event: 0, EventName: "A", Handler: "h", Depth: 0},
		evt(1, "B", event.Sync, 1),
	}
	g := BuildEventGraph(entries)
	if g.NumEdges() != 1 || g.EdgeBetween(0, 1).Weight != 1 {
		t.Errorf("graph = %+v", g.Edges())
	}
}

func TestReduce(t *testing.T) {
	g := NewEventGraph()
	g.SetName(0, "A")
	g.SetName(1, "B")
	g.SetName(2, "C")
	g.AddEdge(0, 1, 500, 500)
	g.AddEdge(1, 2, 100, 100)
	g.AddEdge(2, 0, 300, 0)
	r := g.Reduce(300)
	if r.NumEdges() != 2 {
		t.Fatalf("reduced edges = %d", r.NumEdges())
	}
	if r.EdgeBetween(1, 2) != nil {
		t.Error("below-threshold edge survived")
	}
	if r.EdgeBetween(0, 1) == nil || r.EdgeBetween(2, 0) == nil {
		t.Error("above-threshold edges missing")
	}
	if r.Name(0) != "A" {
		t.Error("names not carried over")
	}
	// Reduction must not mutate the original.
	if g.NumEdges() != 3 {
		t.Error("Reduce mutated the source graph")
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	g := NewEventGraph()
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(0, 2, 1, 1)
	g.AddEdge(2, 1, 1, 1)
	if got := g.Successors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Successors(0) = %v", got)
	}
	if got := g.Predecessors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Predecessors(1) = %v", got)
	}
	if got := g.Successors(1); len(got) != 0 {
		t.Errorf("Successors(1) = %v", got)
	}
}

func TestPathsLinear(t *testing.T) {
	// A→B→C hot, C→D cold: path extraction at t=10 gives A→B→C.
	g := NewEventGraph()
	g.SetName(0, "A")
	g.SetName(1, "B")
	g.SetName(2, "C")
	g.SetName(3, "D")
	g.AddEdge(0, 1, 50, 50)
	g.AddEdge(1, 2, 40, 40)
	g.AddEdge(2, 3, 2, 2)
	paths := g.Paths(10, 0)
	if len(paths) != 1 {
		t.Fatalf("paths = %v", paths)
	}
	if got := paths[0].String(g); got != "A -> B -> C" {
		t.Errorf("path = %q", got)
	}
	if w := g.MinWeight(paths[0]); w != 40 {
		t.Errorf("MinWeight = %d", w)
	}
}

func TestPathsBranching(t *testing.T) {
	// A→B, A→C both hot: two maximal paths.
	g := NewEventGraph()
	g.AddEdge(0, 1, 50, 50)
	g.AddEdge(0, 2, 60, 60)
	paths := g.Paths(10, 0)
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	// Heavier-bottleneck path sorts first.
	if paths[0][1] != 2 {
		t.Errorf("first path = %v, want A->C first", paths[0])
	}
}

func TestPathsCycleTerminates(t *testing.T) {
	g := NewEventGraph()
	g.AddEdge(0, 1, 50, 50)
	g.AddEdge(1, 0, 50, 50)
	paths := g.Paths(10, 0)
	if len(paths) == 0 {
		t.Fatal("cyclic graph produced no paths")
	}
	for _, p := range paths {
		if len(p) > 2 {
			t.Errorf("path revisits nodes: %v", p)
		}
	}
}

func TestPathsMaxCap(t *testing.T) {
	g := NewEventGraph()
	// Fan-out of 6 from one root.
	for i := 1; i <= 6; i++ {
		g.AddEdge(0, event.ID(i), 10, 10)
	}
	paths := g.Paths(1, 3)
	if len(paths) > 3 {
		t.Errorf("cap not honored: %d paths", len(paths))
	}
}

func TestMinWeightEdgeCases(t *testing.T) {
	g := NewEventGraph()
	g.AddEdge(0, 1, 5, 5)
	if g.MinWeight(Path{0}) != 0 {
		t.Error("single-node path weight should be 0")
	}
	if g.MinWeight(Path{0, 2}) != 0 {
		t.Error("missing-edge path weight should be 0")
	}
}

func TestChainsBasic(t *testing.T) {
	// A→B→C all sync, unique successors: one chain A,B,C.
	g := NewEventGraph()
	g.SetName(0, "A")
	g.SetName(1, "B")
	g.SetName(2, "C")
	g.AddEdge(0, 1, 100, 100)
	g.AddEdge(1, 2, 100, 100)
	chains := g.Chains()
	if len(chains) != 1 || chains[0].String(g) != "A -> B -> C" {
		t.Fatalf("chains = %v", chains)
	}
}

func TestChainsAsyncEdgeExcluded(t *testing.T) {
	// B's successor edge is async: chain must stop at B.
	g := NewEventGraph()
	g.AddEdge(0, 1, 100, 100)
	g.AddEdge(1, 2, 100, 0) // async
	chains := g.Chains()
	if len(chains) != 1 || len(chains[0]) != 2 || chains[0][0] != 0 || chains[0][1] != 1 {
		t.Fatalf("chains = %v", chains)
	}
}

func TestChainsBranchingBreaks(t *testing.T) {
	// A has two successors: no chain can start at A.
	g := NewEventGraph()
	g.AddEdge(0, 1, 100, 100)
	g.AddEdge(0, 2, 100, 100)
	g.AddEdge(1, 3, 100, 100)
	chains := g.Chains()
	if len(chains) != 1 || chains[0][0] != 1 {
		t.Fatalf("chains = %v", chains)
	}
}

func TestChainsCycleTerminates(t *testing.T) {
	g := NewEventGraph()
	g.AddEdge(0, 1, 10, 10)
	g.AddEdge(1, 0, 10, 10)
	chains := g.Chains()
	for _, c := range chains {
		if len(c) > 2 {
			t.Errorf("cyclic chain too long: %v", c)
		}
	}
}

func TestChainsMixedSyncEdge(t *testing.T) {
	// Edge observed both sync and async: not a guaranteed sequence.
	g := NewEventGraph()
	g.AddEdge(0, 1, 100, 60)
	if chains := g.Chains(); len(chains) != 0 {
		t.Errorf("mixed edge produced chains: %v", chains)
	}
}

func TestChainsAsyncExtendsDominantEdge(t *testing.T) {
	// A→B sync, B~>C async but carrying all of C's incoming weight: the
	// async-aware extraction crosses the edge and marks the link.
	g := NewEventGraph()
	g.SetName(0, "A")
	g.SetName(1, "B")
	g.SetName(2, "C")
	g.AddEdge(0, 1, 100, 100)
	g.AddEdge(1, 2, 100, 0) // async, fully dominant
	chains := g.ChainsAsync(0.9)
	if len(chains) != 1 {
		t.Fatalf("chains = %v", chains)
	}
	c := chains[0]
	if c.String(g) != "A -> B ~> C" {
		t.Fatalf("chain = %q, want A -> B ~> C", c.String(g))
	}
	if len(c.Async) != 3 || c.Async[0] || c.Async[1] || !c.Async[2] {
		t.Fatalf("async mask = %v, want [false false true]", c.Async)
	}
}

func TestChainsAsyncNonDominantBreaks(t *testing.T) {
	// B~>C is B's only successor, but C has another heavy producer: the
	// dominance test fails and the chain stops at B (Chains semantics).
	g := NewEventGraph()
	g.AddEdge(0, 1, 100, 100)
	g.AddEdge(1, 2, 100, 0) // async from B
	g.AddEdge(3, 2, 100, 0) // C also fed heavily by 3: share is 0.5
	chains := g.ChainsAsync(0.9)
	if len(chains) != 1 {
		t.Fatalf("chains = %v", chains)
	}
	if got := chains[0].Events; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("chain events = %v, want [0 1]", got)
	}
}

func TestChainsAsyncShareThreshold(t *testing.T) {
	// The same graph crosses the edge at share 0.5 but not at 0.9 —
	// dominance is a caller-tunable policy, not a fixed rule.
	g := NewEventGraph()
	g.AddEdge(0, 1, 100, 100)
	g.AddEdge(1, 2, 60, 0)
	g.AddEdge(3, 2, 40, 0)
	if chains := g.ChainsAsync(0.9); len(chains[0].Events) != 2 {
		t.Fatalf("share 0.9 crossed a 60%% edge: %v", chains)
	}
	if chains := g.ChainsAsync(0.5); len(chains[0].Events) != 3 {
		t.Fatalf("share 0.5 did not cross a 60%% edge: %v", chains)
	}
}

func TestChainsAsyncAgreesOnSyncGraphs(t *testing.T) {
	// With no async edges the two extractions agree exactly.
	g := NewEventGraph()
	g.AddEdge(0, 1, 100, 100)
	g.AddEdge(1, 2, 100, 100)
	sync := g.Chains()
	async := g.ChainsAsync(0)
	if len(sync) != len(async) {
		t.Fatalf("Chains %v vs ChainsAsync %v", sync, async)
	}
	for i := range sync {
		if len(sync[i]) != len(async[i].Events) {
			t.Fatalf("chain %d differs: %v vs %v", i, sync[i], async[i].Events)
		}
		for _, a := range async[i].Async {
			if a {
				t.Fatalf("sync graph produced async link: %v", async[i])
			}
		}
	}
}

func TestChainsAsyncBreaksAdjacencyCycle(t *testing.T) {
	// A ping-pong stream (a raises b synchronously, the next top-level a
	// follows b asynchronously) records the cycle A -> B ~> A. Admitting
	// the async link must not cost the chain its head: the cycle breaks
	// at the async adjacency and the synchronous prefix survives.
	g := NewEventGraph()
	g.SetName(0, "A")
	g.SetName(1, "B")
	g.AddEdge(0, 1, 200, 200) // A -> B, the real raise
	g.AddEdge(1, 0, 199, 0)   // B ~> A, queue adjacency
	chains := g.ChainsAsync(0.9)
	if len(chains) != 1 {
		t.Fatalf("chains = %v, want exactly the broken cycle", chains)
	}
	if got := chains[0].String(g); got != "A -> B" {
		t.Fatalf("chain = %q, want A -> B (broken at the async link)", got)
	}

	// A purely synchronous cycle stays chain-less, matching Chains().
	g2 := NewEventGraph()
	g2.AddEdge(0, 1, 100, 100)
	g2.AddEdge(1, 0, 100, 100)
	if chains := g2.ChainsAsync(0.9); len(chains) != 0 {
		t.Fatalf("sync cycle produced chains: %v", chains)
	}
	if chains := g2.Chains(); len(chains) != 0 {
		t.Fatalf("Chains() on a cycle: %v", chains)
	}
}

func TestWriteDOT(t *testing.T) {
	g := NewEventGraph()
	g.SetName(0, "SegFromUser")
	g.SetName(1, "Seg2Net")
	g.AddEdge(0, 1, 391, 391)
	g.AddEdge(1, 0, 10, 0)
	var b strings.Builder
	if err := g.WriteDOT(&b, "fig5"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"digraph", "SegFromUser", "style=solid", "style=dashed", `label="391"`} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

// Property: sum of edge weights equals number of adjacent pairs, and
// every reduced edge meets the threshold while no dropped edge does.
func TestQuickGraphInvariants(t *testing.T) {
	f := func(seq []uint8, tRaw uint8) bool {
		entries := make([]trace.Entry, len(seq))
		for i, v := range seq {
			id := event.ID(v % 6)
			entries[i] = evt(id, string(rune('A'+id)), event.Mode(v%2), 0)
		}
		g := BuildEventGraph(entries)
		want := 0
		if len(entries) > 1 {
			want = len(entries) - 1
		}
		if g.TotalWeight() != want {
			return false
		}
		threshold := int(tRaw%8) + 1
		r := g.Reduce(threshold)
		for _, e := range r.Edges() {
			if e.Weight < threshold {
				return false
			}
			orig := g.EdgeBetween(e.From, e.To)
			if orig == nil || orig.Weight != e.Weight || orig.SyncWeight != e.SyncWeight {
				return false
			}
		}
		// Every original edge >= threshold must be present.
		for _, e := range g.Edges() {
			if e.Weight >= threshold && r.EdgeBetween(e.From, e.To) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every extracted path is a real path whose bottleneck weight
// meets the threshold.
func TestQuickPathsRespectThreshold(t *testing.T) {
	f := func(seq []uint8) bool {
		entries := make([]trace.Entry, len(seq))
		for i, v := range seq {
			id := event.ID(v % 5)
			entries[i] = evt(id, string(rune('A'+id)), event.Sync, 0)
		}
		g := BuildEventGraph(entries)
		const threshold = 3
		for _, p := range g.Paths(threshold, 64) {
			if len(p) < 2 {
				return false
			}
			if g.MinWeight(p) < threshold {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
