package profile

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteDOT renders the event graph in Graphviz DOT form, using the visual
// convention of paper Fig. 5: solid edges for synchronously activated
// successors, dashed edges for asynchronous/timed ones, edge labels
// carrying weights.
func (g *EventGraph) WriteDOT(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "digraph %s {\n  rankdir=TB;\n  node [shape=ellipse, fontsize=10];\n", strconv.Quote(title)); err != nil {
		return err
	}
	for _, n := range g.Nodes() {
		if _, err := fmt.Fprintf(w, "  n%d [label=%s];\n", n, strconv.Quote(g.Name(n))); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		style := "solid"
		if !e.Sync() {
			style = "dashed"
		}
		if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=\"%d\", style=%s];\n",
			e.From, e.To, e.Weight, style); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// WriteDOT renders the handler graph in Graphviz DOT form, clustering
// handler nodes by the event they belong to (the Fig. 8 view).
func (g *HandlerGraph) WriteDOT(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "digraph %s {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", strconv.Quote(title)); err != nil {
		return err
	}
	ids := make(map[HandlerNode]int)
	byEvent := make(map[string][]HandlerNode)
	for i, n := range g.Nodes() {
		ids[n] = i
		byEvent[n.EventName] = append(byEvent[n.EventName], n)
	}
	events := make([]string, 0, len(byEvent))
	for ev := range byEvent {
		events = append(events, ev)
	}
	sort.Strings(events)
	for ci, ev := range events {
		if _, err := fmt.Fprintf(w, "  subgraph cluster_%d {\n    label=%s;\n", ci, strconv.Quote(ev)); err != nil {
			return err
		}
		for _, n := range byEvent[ev] {
			if _, err := fmt.Fprintf(w, "    h%d [label=%s];\n", ids[n], strconv.Quote(n.Handler)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, "  }"); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "  h%d -> h%d [label=\"%d\"];\n", ids[e.From], ids[e.To], e.Weight); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
