package profile

import (
	"testing"

	"eventopt/internal/event"
	"eventopt/internal/telemetry"
)

// TestLiveGraphMatchesOffline drives the same workload through the live
// sampled feed (SampleEvery 1) and the offline GraphBuilder idiom and
// requires the same hot structure: continuous profiling replaces the
// separate trace run without changing what the analyses see.
func TestLiveGraphMatchesOffline(t *testing.T) {
	s := event.New(event.WithTelemetry(telemetry.Config{SampleEvery: 1}))
	a := s.Define("a")
	b := s.Define("b")
	c := s.Define("c")
	s.Bind(a, "ha", func(ctx *event.Ctx) { ctx.Raise(b) })
	s.Bind(b, "hb", func(ctx *event.Ctx) { ctx.Raise(c) })
	s.Bind(c, "hc", func(ctx *event.Ctx) {})
	for i := 0; i < 50; i++ {
		if err := s.Raise(a); err != nil {
			t.Fatal(err)
		}
	}

	g := FromTelemetry(s.Telemetry().Graph())
	if g.NumNodes() < 3 {
		t.Fatalf("live graph has %d nodes, want >= 3", g.NumNodes())
	}
	eAB := g.EdgeBetween(a, b)
	if eAB == nil || eAB.Weight != 50 {
		t.Fatalf("a->b edge = %+v, want weight 50", eAB)
	}
	if !eAB.Sync() {
		t.Fatal("a->b must be fully synchronous")
	}
	if name := g.Name(b); name != "b" {
		t.Fatalf("node b named %q", name)
	}

	hot := HotPaths(s.Telemetry().Graph(), 10, 4)
	if len(hot) == 0 {
		t.Fatal("no hot paths found")
	}
	top := hot[0]
	if len(top.Events) < 3 || top.Events[0] != a || top.Events[len(top.Events)-1] != c {
		t.Fatalf("top hot path = %+v, want a..c", top)
	}
	if top.Weight < 49 {
		t.Fatalf("top hot path weight = %d, want ~50", top.Weight)
	}
}

// TestHotPathsScalesSampledWeights verifies the SampleEvery scaling: a
// feed sampled 1-in-4 must report edge weights comparable to the true
// traversal counts, so offline-tuned thresholds keep working.
func TestHotPathsScalesSampledWeights(t *testing.T) {
	s := event.New(event.WithTelemetry(telemetry.Config{SampleEvery: 4}))
	a := s.Define("a")
	b := s.Define("b")
	s.Bind(a, "ha", func(ctx *event.Ctx) { ctx.Raise(b) })
	s.Bind(b, "hb", func(ctx *event.Ctx) {})
	for i := 0; i < 400; i++ {
		if err := s.Raise(a); err != nil {
			t.Fatal(err)
		}
	}
	g := FromTelemetry(s.Telemetry().Graph())
	e := g.EdgeBetween(a, b)
	if e == nil {
		t.Fatal("a->b edge missing from sampled feed")
	}
	// 400 a->b pairs sampled 1-in-4 and scaled by 4: within 25% of truth.
	if e.Weight < 300 || e.Weight > 500 {
		t.Fatalf("scaled a->b weight = %d, want ~400", e.Weight)
	}
}

// TestFromTelemetryTolerantOfEmptyAndPartial is the adaptive-controller
// regression: the first ticks of a live optimizer see an empty (or
// half-filled, or malformed) snapshot, and the whole analysis pipeline
// must degrade to "nothing hot" instead of planning garbage.
func TestFromTelemetryTolerantOfEmptyAndPartial(t *testing.T) {
	// Fully empty snapshot (telemetry attached, nothing sampled yet).
	g := FromTelemetry(telemetry.GraphSnapshot{})
	if g.NumNodes() != 0 || len(g.Edges()) != 0 {
		t.Fatalf("empty snapshot produced %d nodes", g.NumNodes())
	}
	if hp := HotPaths(telemetry.GraphSnapshot{}, 0, 4); len(hp) != 0 {
		t.Fatalf("empty snapshot produced hot paths: %+v", hp)
	}
	p := GraphProfile(g)
	if got := p.HotEvents(1); len(got) != 0 {
		t.Fatalf("empty profile reports hot events: %v", got)
	}

	// Malformed rows: negative IDs and non-positive weights are dropped,
	// a sync count exceeding the total is clamped, valid rows survive.
	gs := telemetry.GraphSnapshot{
		SampleEvery: 2,
		Edges: []telemetry.GraphEdge{
			{From: -1, To: 1, Weight: 9},                // negative ID: dropped
			{From: 0, To: 1, Weight: 0},                 // zero weight: dropped
			{From: 1, To: 2, Weight: -3},                // negative weight: dropped
			{From: 3, To: 4, Weight: 5, SyncWeight: 50}, // sync > total: clamped
		},
	}
	g = FromTelemetry(gs)
	if len(g.Edges()) != 1 {
		t.Fatalf("partial snapshot kept %d edges, want 1", len(g.Edges()))
	}
	e := g.EdgeBetween(3, 4)
	if e == nil || e.Weight != 10 || e.SyncWeight != 10 {
		t.Fatalf("clamped edge = %+v, want weight 10 sync 10", e)
	}
	if !e.Sync() {
		t.Fatal("clamped edge must read as fully synchronous")
	}

	// GraphProfile estimates activation counts from incident weights.
	p = GraphProfile(g)
	if c := p.Count(3); c != 10 {
		t.Fatalf("Count(3) = %d, want 10", c)
	}
	if c := p.Count(4); c != 10 {
		t.Fatalf("Count(4) = %d, want 10", c)
	}
	// Live profiles carry no handler-level records: handler queries must
	// report "unknown", not fabricate stability.
	if _, ok := p.StableHandlers(3); ok {
		t.Fatal("live profile fabricated stable handlers")
	}
	if _, ok := p.StableSyncRaises(3, "h"); ok {
		t.Fatal("live profile fabricated stable raises")
	}

	// LiveProfile is the one-call composition.
	if lp := LiveProfile(gs); lp.Count(3) != 10 {
		t.Fatalf("LiveProfile Count(3) = %d", lp.Count(3))
	}
}
