package profile

import (
	"testing"

	"eventopt/internal/event"
	"eventopt/internal/telemetry"
)

// TestLiveGraphMatchesOffline drives the same workload through the live
// sampled feed (SampleEvery 1) and the offline GraphBuilder idiom and
// requires the same hot structure: continuous profiling replaces the
// separate trace run without changing what the analyses see.
func TestLiveGraphMatchesOffline(t *testing.T) {
	s := event.New(event.WithTelemetry(telemetry.Config{SampleEvery: 1}))
	a := s.Define("a")
	b := s.Define("b")
	c := s.Define("c")
	s.Bind(a, "ha", func(ctx *event.Ctx) { ctx.Raise(b) })
	s.Bind(b, "hb", func(ctx *event.Ctx) { ctx.Raise(c) })
	s.Bind(c, "hc", func(ctx *event.Ctx) {})
	for i := 0; i < 50; i++ {
		if err := s.Raise(a); err != nil {
			t.Fatal(err)
		}
	}

	g := FromTelemetry(s.Telemetry().Graph())
	if g.NumNodes() < 3 {
		t.Fatalf("live graph has %d nodes, want >= 3", g.NumNodes())
	}
	eAB := g.EdgeBetween(a, b)
	if eAB == nil || eAB.Weight != 50 {
		t.Fatalf("a->b edge = %+v, want weight 50", eAB)
	}
	if !eAB.Sync() {
		t.Fatal("a->b must be fully synchronous")
	}
	if name := g.Name(b); name != "b" {
		t.Fatalf("node b named %q", name)
	}

	hot := HotPaths(s.Telemetry().Graph(), 10, 4)
	if len(hot) == 0 {
		t.Fatal("no hot paths found")
	}
	top := hot[0]
	if len(top.Events) < 3 || top.Events[0] != a || top.Events[len(top.Events)-1] != c {
		t.Fatalf("top hot path = %+v, want a..c", top)
	}
	if top.Weight < 49 {
		t.Fatalf("top hot path weight = %d, want ~50", top.Weight)
	}
}

// TestHotPathsScalesSampledWeights verifies the SampleEvery scaling: a
// feed sampled 1-in-4 must report edge weights comparable to the true
// traversal counts, so offline-tuned thresholds keep working.
func TestHotPathsScalesSampledWeights(t *testing.T) {
	s := event.New(event.WithTelemetry(telemetry.Config{SampleEvery: 4}))
	a := s.Define("a")
	b := s.Define("b")
	s.Bind(a, "ha", func(ctx *event.Ctx) { ctx.Raise(b) })
	s.Bind(b, "hb", func(ctx *event.Ctx) {})
	for i := 0; i < 400; i++ {
		if err := s.Raise(a); err != nil {
			t.Fatal(err)
		}
	}
	g := FromTelemetry(s.Telemetry().Graph())
	e := g.EdgeBetween(a, b)
	if e == nil {
		t.Fatal("a->b edge missing from sampled feed")
	}
	// 400 a->b pairs sampled 1-in-4 and scaled by 4: within 25% of truth.
	if e.Weight < 300 || e.Weight > 500 {
		t.Fatalf("scaled a->b weight = %d, want ~400", e.Weight)
	}
}
