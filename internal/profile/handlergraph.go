package profile

import (
	"fmt"
	"sort"

	"eventopt/internal/trace"
)

// HandlerNode identifies a handler qualified by the event it is bound to;
// the same function bound to two events appears as two nodes, matching
// the paper's handler-graph view (Fig. 8).
type HandlerNode struct {
	EventName string
	Handler   string
}

// String renders the node as event/handler.
func (n HandlerNode) String() string { return n.EventName + "/" + n.Handler }

// HandlerEdge is a weighted edge of the handler graph.
type HandlerEdge struct {
	From, To HandlerNode
	Weight   int
}

// HandlerGraph summarizes handler execution sequences, built from the
// HandlerEnter entries of a trace with the same adjacency algorithm as
// the event graph (section 3.1: "the profiling and graph construction for
// handlers is carried out in the same way as before").
type HandlerGraph struct {
	edges map[[2]HandlerNode]*HandlerEdge
}

// BuildHandlerGraph constructs the handler graph of a trace.
func BuildHandlerGraph(entries []trace.Entry) *HandlerGraph {
	g := &HandlerGraph{edges: make(map[[2]HandlerNode]*HandlerEdge)}
	first := true
	var prev HandlerNode
	for _, e := range entries {
		if e.Kind != trace.HandlerEnter {
			continue
		}
		cur := HandlerNode{EventName: e.EventName, Handler: e.Handler}
		if first {
			prev, first = cur, false
			continue
		}
		k := [2]HandlerNode{prev, cur}
		edge := g.edges[k]
		if edge == nil {
			edge = &HandlerEdge{From: prev, To: cur}
			g.edges[k] = edge
		}
		edge.Weight++
		prev = cur
	}
	return g
}

// NumEdges reports the number of distinct edges.
func (g *HandlerGraph) NumEdges() int { return len(g.edges) }

// EdgeBetween returns the edge from→to, or nil.
func (g *HandlerGraph) EdgeBetween(from, to HandlerNode) *HandlerEdge {
	return g.edges[[2]HandlerNode{from, to}]
}

// Edges returns all edges in deterministic order.
func (g *HandlerGraph) Edges() []*HandlerEdge {
	out := make([]*HandlerEdge, 0, len(g.edges))
	for _, e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From.String() != b.From.String() {
			return a.From.String() < b.From.String()
		}
		return a.To.String() < b.To.String()
	})
	return out
}

// Nodes returns all nodes in deterministic order.
func (g *HandlerGraph) Nodes() []HandlerNode {
	seen := make(map[HandlerNode]bool)
	for k := range g.edges {
		seen[k[0]] = true
		seen[k[1]] = true
	}
	out := make([]HandlerNode, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// ContiguousRuns reports, for each event, the weight of the heaviest
// handler-to-handler edge within the event — a quick signal of events
// whose multiple handlers always run as a block (merge candidates).
func (g *HandlerGraph) ContiguousRuns() map[string]int {
	out := make(map[string]int)
	for _, e := range g.Edges() {
		if e.From.EventName == e.To.EventName && e.Weight > out[e.From.EventName] {
			out[e.From.EventName] = e.Weight
		}
	}
	return out
}

// String renders an adjacency listing for diagnostics.
func (g *HandlerGraph) String() string {
	s := ""
	for _, e := range g.Edges() {
		s += fmt.Sprintf("%s -> %s [%d]\n", e.From, e.To, e.Weight)
	}
	return s
}
