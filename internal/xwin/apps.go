package xwin

import (
	"fmt"

	"eventopt/internal/event"
	"eventopt/internal/hir"
)

// --- Athena-style widgets ---

// NewSimpleMenu creates an Athena SimpleMenu widget: a popup list of
// entries with a notify callback fired on selection.
func NewSimpleMenu(c *Client, name string, entries []string) *Widget {
	w := c.NewWidget(name, "SimpleMenu", 0)
	c.Mod.Globals.Set(name+".nentries", hir.IntVal(int64(len(entries))))
	for i, e := range entries {
		c.Mod.Globals.Set(fmt.Sprintf("%s.entry%d", name, i), hir.StrVal(e))
	}
	// Selecting an entry issues the menu's notify callback.
	w.AddTranslation(ButtonRelease, 0, "notify")
	w.AddAction("notify", func(w *Widget, ctx *event.Ctx) {
		idx := ctx.Args.Int("y") / 16 // fixed entry height
		if idx >= 0 && idx < len(entries) {
			ctx.Raise(w.CallbackEvent("callback"), event.A("index", idx))
		}
	})
	return w
}

// NewScrollbar creates an Athena Scrollbar widget of the given pixel
// length with jumpProc/scrollProc callbacks, driven by the thumb-coords
// and thumb-display actions on pointer motion.
func NewScrollbar(c *Client, name string, length int) *Widget {
	w := c.NewWidget(name, "Scrollbar", 0)
	w.H = length
	st := c.Mod.Globals
	st.Set(name+".length", hir.IntVal(int64(length)))
	st.Set(name+".thumb", hir.IntVal(int64(length/10)))
	st.Set(name+".top", hir.IntVal(0))
	return w
}

// NewLabel creates a Label widget that repaints its text on Expose.
func NewLabel(c *Client, name, text string) *Widget {
	w := c.NewWidget(name, "Label", 0)
	c.Mod.Globals.Set(name+".text", hir.StrVal(text))

	b := hir.NewBuilder("display-label", 0)
	win := b.BindArg("win")
	txt := b.Load(name + ".text")
	wd := b.Call("text_width", txt)
	zero := b.Int(0)
	b.Call("paint", win, b.Const(hir.StrVal("label")), zero, zero, wd)
	b.Return(hir.NoReg)
	w.AddActionHIR("display-label", b.Fn())
	w.AddTranslation(Expose, 0, "display-label")
	return w
}

// NewCommand creates a Command (push button) widget with the classic
// Athena set/notify/unset action trio and a "callback" callback list.
func NewCommand(c *Client, name, label string) *Widget {
	w := c.NewWidget(name, "Command", 0)
	c.Mod.Globals.Set(name+".label", hir.StrVal(label))

	set := hir.NewBuilder("set", 0)
	win := set.BindArg("win")
	one := set.Int(1)
	set.Store(name+".set", one)
	z := set.Int(0)
	set.Call("paint", win, set.Const(hir.StrVal("highlight")), z, z, one)
	set.Return(hir.NoReg)
	w.AddActionHIR("set", set.Fn())

	notify := hir.NewBuilder("notify", 0)
	isSet := notify.Load(name + ".set")
	fire := notify.NewBlock()
	done := notify.NewBlock()
	notify.SetBlock(hir.Entry)
	notify.Branch(isSet, fire, done)
	notify.SetBlock(fire)
	notify.Raise(w.CallbackEventName("callback"), nil, nil)
	notify.Jump(done)
	notify.SetBlock(done)
	notify.Return(hir.NoReg)
	w.AddActionHIR("notify", notify.Fn())

	unset := hir.NewBuilder("unset", 0)
	win2 := unset.BindArg("win")
	zz := unset.Int(0)
	unset.Store(name+".set", zz)
	unset.Call("paint", win2, unset.Const(hir.StrVal("unhighlight")), zz, zz, zz)
	unset.Return(hir.NoReg)
	w.AddActionHIR("unset", unset.Fn())

	w.AddTranslation(ButtonPress, 0, "set")
	w.AddTranslation(ButtonRelease, 0, "notify", "unset")
	return w
}

// --- xterm ---

// XTerm models the paper's xterm application: a VT100 text widget whose
// CTRL+BUTTON translation triggers the Menu Popup — two action handlers
// in sequence, the first initializing the SimpleMenu object, the second
// constructing and displaying the menu and invoking two callbacks that
// track mouse motion within it (section 4.3, "Popup").
type XTerm struct {
	Client *Client
	VT     *Widget
	Menu   *Widget
	// PopupEvent is the runtime event behind CTRL+ButtonPress.
	PopupEvent event.ID
}

// NewXTerm builds the application.
func NewXTerm(opts ...event.Option) *XTerm {
	c := NewClient("xterm", opts...)
	x := &XTerm{Client: c}

	x.VT = c.NewWidget("vt100", "VT100", KeyPress.Mask()|Expose.Mask())
	x.Menu = NewSimpleMenu(c, "mainMenu", []string{
		"Secure Keyboard", "Allow SendEvents", "Redraw Window", "Quit",
	})

	st := c.Mod.Globals
	st.Set("vt100.chars", hir.IntVal(0))

	// Typing: count and echo the character (plain event handler path).
	ins := hir.NewBuilder("insert-char", 0)
	win := ins.BindArg("win")
	n := ins.Load("vt100.chars")
	one := ins.Int(1)
	n2 := ins.Bin(hir.Add, n, one)
	ins.Store("vt100.chars", n2)
	det := ins.Arg("detail")
	zero := ins.Int(0)
	ins.Call("paint", win, ins.Const(hir.StrVal("glyph")), n2, zero, det)
	ins.Return(hir.NoReg)
	x.VT.AddEventHandlerHIR("insert-char", ins.Fn(), KeyPress)

	// Popup action 1: initialize the menu object (SimpleMenu specifics).
	init := hir.NewBuilder("menu-init", 0)
	mwin := init.Int(int64(x.Menu.ID))
	ne := init.Load("mainMenu.nentries")
	eh := init.Int(16)
	h := init.Bin(hir.Mul, ne, eh)
	init.Store("mainMenu.height", h)
	z := init.Int(0)
	init.Call("paint", mwin, init.Const(hir.StrVal("menu-clear")), z, z, h)
	one2 := init.Int(1)
	init.Store("mainMenu.inited", one2)
	init.Return(hir.NoReg)
	x.VT.AddActionHIR("menu-init", init.Fn())

	// Popup action 2: construct and display the menu, then invoke the
	// two motion-tracking callbacks.
	disp := hir.NewBuilder("menu-display", 0)
	mwin2 := disp.Int(int64(x.Menu.ID))
	px := disp.Arg("x")
	py := disp.Arg("y")
	hh := disp.Load("mainMenu.height")
	disp.Call("paint", mwin2, disp.Const(hir.StrVal("menu-show")), px, py, hh)
	disp.Raise(x.Menu.CallbackEventName("track-enter"), []string{"x", "y"}, []hir.Reg{px, py})
	disp.Raise(x.Menu.CallbackEventName("track-motion"), []string{"x", "y"}, []hir.Reg{px, py})
	disp.Return(hir.NoReg)
	x.VT.AddActionHIR("menu-display", disp.Fn())

	// The two mouse-motion tracking callbacks.
	te := hir.NewBuilder("cb_track_enter", 0)
	cx := te.Arg("x")
	cy := te.Arg("y")
	te.Store("mainMenu.lastx", cx)
	te.Store("mainMenu.lasty", cy)
	te.Return(hir.NoReg)
	x.Menu.AddCallbackHIR("track-enter", te.Fn())

	tm := hir.NewBuilder("cb_track_motion", 0)
	mx := tm.Load("mainMenu.lastx")
	my := tm.Load("mainMenu.lasty")
	ey := tm.Load("mainMenu.height")
	inY := tm.Bin(hir.Lt, my, ey)
	hl := tm.NewBlock()
	out := tm.NewBlock()
	tm.SetBlock(hir.Entry)
	tm.Branch(inY, hl, out)
	tm.SetBlock(hl)
	sixteen := tm.Int(16)
	idx := tm.Bin(hir.Div, my, sixteen)
	tm.Store("mainMenu.highlight", idx)
	mwin3 := tm.Int(int64(x.Menu.ID))
	tm.Call("paint", mwin3, tm.Const(hir.StrVal("menu-highlight")), mx, my, idx)
	tm.Jump(out)
	tm.SetBlock(out)
	tm.Return(hir.NoReg)
	x.Menu.AddCallbackHIR("track-motion", tm.Fn())

	// The translation table, in Xt syntax.
	if err := x.VT.ParseTranslations("Ctrl<BtnDown>: menu-init() menu-display()"); err != nil {
		panic(err) // static table: a parse failure is a programming error
	}
	x.PopupEvent = x.VT.ActionEvent(ButtonPress, ControlMask)
	return x
}

// Popup dispatches the CTRL+button event that opens the menu.
func (x *XTerm) Popup(px, py int) {
	x.Client.Dispatch(XEvent{Type: ButtonPress, Window: x.VT.ID, X: px, Y: py, State: ControlMask, Detail: 1})
}

// Type dispatches one key press.
func (x *XTerm) Type(keycode int) {
	x.Client.Dispatch(XEvent{Type: KeyPress, Window: x.VT.ID, Detail: keycode})
}

// --- gvim ---

// Gvim models the paper's gvim application: a text widget plus a
// scrollbar whose pointer-motion translation runs the two Scroll action
// handlers — the first obtaining the thumb coordinates from the
// framework, the second displaying the new thumb position, each invoking
// widget callbacks (section 4.3, "Scroll").
type Gvim struct {
	Client    *Client
	Text      *Widget
	Scrollbar *Widget
	// ScrollEvent is the runtime event behind scrollbar motion.
	ScrollEvent event.ID
}

// NewGvim builds the application.
func NewGvim(opts ...event.Option) *Gvim {
	c := NewClient("gvim", opts...)
	g := &Gvim{Client: c}
	g.Text = c.NewWidget("text", "Text", KeyPress.Mask()|Expose.Mask())
	g.Scrollbar = NewScrollbar(c, "sb", 400)

	st := c.Mod.Globals
	st.Set("text.topline", hir.IntVal(0))
	st.Set("text.lines", hir.IntVal(1000))

	// Scroll action 1: compute the thumb position from the pointer.
	co := hir.NewBuilder("thumb-coords", 0)
	y := co.Arg("y")
	length := co.Load("sb.length")
	thumb := co.Load("sb.thumb")
	// Clamp y into [0, length-thumb].
	zero := co.Int(0)
	neg := co.Bin(hir.Lt, y, zero)
	clampLo := co.NewBlock()
	checkHi := co.NewBlock()
	co.SetBlock(hir.Entry)
	co.Branch(neg, clampLo, checkHi)
	co.SetBlock(clampLo)
	z2 := co.Int(0)
	co.Store("sb.top", z2)
	co.Jump(checkHi) // harmless; checkHi re-stores when in range
	co.SetBlock(checkHi)
	maxTop := co.Bin(hir.Sub, length, thumb)
	hi := co.Bin(hir.Gt, y, maxTop)
	clampHi := co.NewBlock()
	inRange := co.NewBlock()
	done := co.NewBlock()
	co.SetBlock(checkHi)
	co.Branch(hi, clampHi, inRange)
	co.SetBlock(clampHi)
	co.Store("sb.top", maxTop)
	co.Jump(done)
	co.SetBlock(inRange)
	lo := co.Bin(hir.Lt, y, zero)
	skipStore := co.NewBlock()
	doStore := co.NewBlock()
	co.SetBlock(inRange)
	co.Branch(lo, skipStore, doStore)
	co.SetBlock(doStore)
	co.Store("sb.top", y)
	co.Jump(done)
	co.SetBlock(skipStore)
	co.Jump(done)
	co.SetBlock(done)
	// Notify the jump callback with the new line.
	top := co.Load("sb.top")
	lines := co.Load("text.lines")
	scaled := co.Bin(hir.Mul, top, lines)
	newline := co.Bin(hir.Div, scaled, length)
	co.Raise(g.Scrollbar.CallbackEventName("jumpProc"), []string{"line"}, []hir.Reg{newline})
	co.Return(hir.NoReg)
	g.Scrollbar.AddActionHIR("thumb-coords", co.Fn())

	// Scroll action 2: display the thumb at its new position.
	dp := hir.NewBuilder("thumb-display", 0)
	win := dp.BindArg("win")
	top2 := dp.Load("sb.top")
	th := dp.Load("sb.thumb")
	zz := dp.Int(0)
	dp.Call("paint", win, dp.Const(hir.StrVal("thumb")), zz, top2, th)
	dp.Raise(g.Scrollbar.CallbackEventName("scrollProc"), []string{"top"}, []hir.Reg{top2})
	dp.Return(hir.NoReg)
	g.Scrollbar.AddActionHIR("thumb-display", dp.Fn())

	// jumpProc: reposition the text view.
	jp := hir.NewBuilder("cb_jumpProc", 0)
	ln := jp.Arg("line")
	jp.Store("text.topline", ln)
	jp.Return(hir.NoReg)
	g.Scrollbar.AddCallbackHIR("jumpProc", jp.Fn())

	// scrollProc: repaint the visible text region.
	sp := hir.NewBuilder("cb_scrollProc", 0)
	twin := sp.Int(int64(g.Text.ID))
	tl := sp.Load("text.topline")
	z3 := sp.Int(0)
	sp.Call("paint", twin, sp.Const(hir.StrVal("text-region")), z3, tl, z3)
	sp.Return(hir.NoReg)
	g.Scrollbar.AddCallbackHIR("scrollProc", sp.Fn())

	if err := g.Scrollbar.ParseTranslations("Btn1<Motion>: thumb-coords() thumb-display()"); err != nil {
		panic(err)
	}
	g.ScrollEvent = g.Scrollbar.ActionEvent(MotionNotify, Button1Mask)
	return g
}

// Scroll dispatches one scrollbar drag event at pointer height y.
func (g *Gvim) Scroll(y int) {
	g.Client.Dispatch(XEvent{Type: MotionNotify, Window: g.Scrollbar.ID, Y: y, State: Button1Mask})
}

// TopLine reports the text widget's current top line.
func (g *Gvim) TopLine() int64 {
	return g.Client.Mod.Globals.Get("text.topline").Int()
}
