package xwin

import (
	"strings"

	"eventopt/internal/event"
)

// TextWidget is a multi-line text editing widget in the Athena Text
// mold: a line buffer with an insertion cursor, driven by the classic
// action procedures (insert-character, newline, delete-previous-
// character, cursor movement) through the widget's translation table,
// with a redisplay action painting the visible region. It exercises the
// event-handler path with realistic per-keystroke work.
type TextWidget struct {
	*Widget

	lines    []string
	row, col int
	topLine  int // first visible line
	rows     int // visible line count

	// Edits counts buffer-modifying actions (for tests and profiling).
	Edits int
}

// NewText creates a text widget with the standard editing translations
// installed:
//
//	<Key>:        insert-character() redisplay()
//	Ctrl<Key>:    control-key() redisplay()   (m=newline, h=delete, f/b=move)
//	<Expose>:     redisplay()
//
// Each keystroke runs two action handlers (edit + echo), the
// multi-handler pattern section 4.3 calls a good merging candidate.
func NewText(c *Client, name string, visibleRows int) *TextWidget {
	if visibleRows <= 0 {
		visibleRows = 24
	}
	t := &TextWidget{
		Widget: c.NewWidget(name, "Text", 0),
		lines:  []string{""},
		rows:   visibleRows,
	}
	t.AddAction("insert-character", func(_ *Widget, ctx *event.Ctx) {
		t.InsertRune(rune(ctx.Args.Int("detail")))
	})
	t.AddAction("control-key", func(_ *Widget, ctx *event.Ctx) {
		switch ctx.Args.Int("detail") {
		case 'm': // Ctrl-M: newline
			t.Newline()
		case 'h': // Ctrl-H: delete previous
			t.DeletePrevious()
		case 'f': // Ctrl-F: forward
			t.Move(0, 1)
		case 'b': // Ctrl-B: backward
			t.Move(0, -1)
		case 'n': // Ctrl-N: next line
			t.Move(1, 0)
		case 'p': // Ctrl-P: previous line
			t.Move(-1, 0)
		}
	})
	t.AddAction("redisplay", func(*Widget, *event.Ctx) { t.Redisplay() })
	if err := t.ParseTranslations(`
		Ctrl<Key>: control-key() redisplay()
		<Key>:     insert-character() redisplay()
		<Expose>:  redisplay()
	`); err != nil {
		panic(err) // static table
	}
	return t
}

// InsertRune inserts ch at the cursor.
func (t *TextWidget) InsertRune(ch rune) {
	line := t.lines[t.row]
	t.lines[t.row] = line[:t.col] + string(ch) + line[t.col:]
	t.col++
	t.Edits++
	t.paintLine(t.row)
}

// Newline splits the current line at the cursor.
func (t *TextWidget) Newline() {
	line := t.lines[t.row]
	rest := line[t.col:]
	t.lines[t.row] = line[:t.col]
	t.lines = append(t.lines, "")
	copy(t.lines[t.row+2:], t.lines[t.row+1:])
	t.lines[t.row+1] = rest
	t.row++
	t.col = 0
	t.Edits++
	t.scrollIntoView()
	t.Redisplay()
}

// DeletePrevious removes the character before the cursor, joining lines
// across a leading-edge delete.
func (t *TextWidget) DeletePrevious() {
	if t.col > 0 {
		line := t.lines[t.row]
		t.lines[t.row] = line[:t.col-1] + line[t.col:]
		t.col--
		t.Edits++
		t.paintLine(t.row)
		return
	}
	if t.row == 0 {
		return
	}
	prev := t.lines[t.row-1]
	t.col = len(prev)
	t.lines[t.row-1] = prev + t.lines[t.row]
	t.lines = append(t.lines[:t.row], t.lines[t.row+1:]...)
	t.row--
	t.Edits++
	t.Redisplay()
}

// Move shifts the cursor by rows/cols, clamped to the buffer.
func (t *TextWidget) Move(dr, dc int) {
	t.row += dr
	if t.row < 0 {
		t.row = 0
	}
	if t.row >= len(t.lines) {
		t.row = len(t.lines) - 1
	}
	t.col += dc
	if t.col < 0 {
		t.col = 0
	}
	if t.col > len(t.lines[t.row]) {
		t.col = len(t.lines[t.row])
	}
	t.scrollIntoView()
}

// ScrollTo makes the given line the top visible line (clamped); the
// scrollbar's jumpProc drives this.
func (t *TextWidget) ScrollTo(top int) {
	if top < 0 {
		top = 0
	}
	if top >= len(t.lines) {
		top = len(t.lines) - 1
	}
	t.topLine = top
	t.Redisplay()
}

func (t *TextWidget) scrollIntoView() {
	if t.row < t.topLine {
		t.topLine = t.row
	}
	if t.row >= t.topLine+t.rows {
		t.topLine = t.row - t.rows + 1
	}
}

// Redisplay repaints the visible region into the client's display list.
func (t *TextWidget) Redisplay() {
	end := t.topLine + t.rows
	if end > len(t.lines) {
		end = len(t.lines)
	}
	for i := t.topLine; i < end; i++ {
		t.paintLine(i)
	}
	t.Client.Display.Paint(t.ID, "cursor", t.col, t.row, 0)
}

func (t *TextWidget) paintLine(i int) {
	t.Client.Display.Paint(t.ID, "text-line", 0, i, len(t.lines[i]))
}

// Contents returns the buffer joined by newlines.
func (t *TextWidget) Contents() string { return strings.Join(t.lines, "\n") }

// Cursor reports the insertion position.
func (t *TextWidget) Cursor() (row, col int) { return t.row, t.col }

// LineCount reports the number of buffer lines.
func (t *TextWidget) LineCount() int { return len(t.lines) }

// TopLine reports the first visible line.
func (t *TextWidget) TopLine() int { return t.topLine }

// TypeString dispatches key events for each byte of s through the
// client's event path (Ctrl-M for '\n').
func (t *TextWidget) TypeString(s string) {
	for _, ch := range s {
		if ch == '\n' {
			t.Client.Dispatch(XEvent{Type: KeyPress, Window: t.ID, State: ControlMask, Detail: 'm'})
			continue
		}
		t.Client.Dispatch(XEvent{Type: KeyPress, Window: t.ID, Detail: int(ch)})
	}
}
