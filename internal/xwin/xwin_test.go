package xwin

import (
	"strings"
	"testing"

	"eventopt/internal/core"
	"eventopt/internal/event"
	"eventopt/internal/profile"
	"eventopt/internal/trace"
)

func TestEventTypeBasics(t *testing.T) {
	if NumEventTypes != 33 {
		t.Errorf("NumEventTypes = %d, want 33", NumEventTypes)
	}
	if KeyPress.String() != "KeyPress" || MappingNotify.String() != "MappingNotify" {
		t.Error("event type names")
	}
	if !strings.HasPrefix(EventType(99).String(), "EventType(") {
		t.Error("unknown type formatting")
	}
	if KeyPress.Mask() == 0 || EventType(0).Mask() != 0 {
		t.Error("masks")
	}
	seen := map[EventMask]bool{}
	for ty := minEventType; ty <= maxEventType; ty++ {
		m := ty.Mask()
		if m == 0 || seen[m] {
			t.Errorf("mask for %v not unique", ty)
		}
		seen[m] = true
	}
}

func TestMaskFiltersEvents(t *testing.T) {
	c := NewClient("t")
	w := c.NewWidget("w", "Core", 0)
	ran := 0
	w.AddEventHandler("h", func(*Widget, *event.Ctx) { ran++ }, KeyPress)
	// KeyPress selected by AddEventHandler; ButtonPress is not.
	c.Dispatch(XEvent{Type: KeyPress, Window: w.ID})
	c.Dispatch(XEvent{Type: ButtonRelease, Window: w.ID})
	if ran != 1 {
		t.Errorf("ran = %d", ran)
	}
	if c.DiscardedEvents != 1 {
		t.Errorf("discarded = %d", c.DiscardedEvents)
	}
	// Unknown window.
	c.Dispatch(XEvent{Type: KeyPress, Window: 99})
	if c.DiscardedEvents != 2 {
		t.Errorf("discarded = %d", c.DiscardedEvents)
	}
}

func TestEventHandlerBoundToMultipleTypes(t *testing.T) {
	c := NewClient("t")
	w := c.NewWidget("w", "Core", 0)
	ran := 0
	w.AddEventHandler("h", func(*Widget, *event.Ctx) { ran++ }, EnterNotify, LeaveNotify)
	c.Dispatch(XEvent{Type: EnterNotify, Window: w.ID})
	c.Dispatch(XEvent{Type: LeaveNotify, Window: w.ID})
	if ran != 2 {
		t.Errorf("ran = %d, want 2 (handler bound to both)", ran)
	}
}

func TestQueueAndFlush(t *testing.T) {
	c := NewClient("t")
	w := c.NewWidget("w", "Core", 0)
	ran := 0
	w.AddEventHandler("h", func(*Widget, *event.Ctx) { ran++ }, KeyPress)
	srv := NewServer()
	srv.Connect(c)
	srv.Send(XEvent{Type: KeyPress, Window: w.ID})
	srv.Send(XEvent{Type: KeyPress, Window: w.ID})
	srv.Send(XEvent{Type: KeyPress, Window: 42}) // nobody's window
	if ran != 0 {
		t.Error("queued events ran eagerly")
	}
	if n := c.Flush(); n != 2 {
		t.Errorf("Flush = %d", n)
	}
	if ran != 2 {
		t.Errorf("ran = %d", ran)
	}
}

func TestTranslationModifierMatching(t *testing.T) {
	c := NewClient("t")
	w := c.NewWidget("w", "Core", 0)
	var got []string
	w.AddAction("plain", func(*Widget, *event.Ctx) { got = append(got, "plain") })
	w.AddAction("ctrl", func(*Widget, *event.Ctx) { got = append(got, "ctrl") })
	w.AddTranslation(ButtonPress, 0, "plain")
	w.AddTranslation(ButtonPress, ControlMask, "ctrl")
	c.Dispatch(XEvent{Type: ButtonPress, Window: w.ID})
	c.Dispatch(XEvent{Type: ButtonPress, Window: w.ID, State: ControlMask})
	c.Dispatch(XEvent{Type: ButtonPress, Window: w.ID, State: ShiftMask}) // no match
	if len(got) != 2 || got[0] != "plain" || got[1] != "ctrl" {
		t.Errorf("got = %v", got)
	}
	if c.DiscardedEvents != 1 {
		t.Errorf("discarded = %d", c.DiscardedEvents)
	}
	if len(w.Translations()) != 2 {
		t.Errorf("translations = %v", w.Translations())
	}
}

func TestCallbackListSemantics(t *testing.T) {
	// All functions bound to a callback name run when it is issued.
	c := NewClient("t")
	w := c.NewWidget("w", "Core", 0)
	ran := 0
	w.AddCallback("cb", func(*Widget, *event.Ctx) { ran++ })
	w.AddCallback("cb", func(*Widget, *event.Ctx) { ran += 10 })
	c.Sys.Raise(w.CallbackEvent("cb"))
	if ran != 11 {
		t.Errorf("ran = %d, want 11", ran)
	}
}

func TestCommandWidgetBehavior(t *testing.T) {
	c := NewClient("t")
	btn := NewCommand(c, "ok", "OK")
	fired := 0
	btn.AddCallback("callback", func(*Widget, *event.Ctx) { fired++ })
	// Release without press: not set, no callback.
	c.Dispatch(XEvent{Type: ButtonRelease, Window: btn.ID})
	if fired != 0 {
		t.Error("notify fired without set")
	}
	c.Dispatch(XEvent{Type: ButtonPress, Window: btn.ID})
	c.Dispatch(XEvent{Type: ButtonRelease, Window: btn.ID})
	if fired != 1 {
		t.Errorf("fired = %d", fired)
	}
	// unset ran after notify: set flag cleared.
	if c.Mod.Globals.Get("ok.set").Int() != 0 {
		t.Error("set flag not cleared")
	}
}

func TestLabelPaintsOnExpose(t *testing.T) {
	c := NewClient("t")
	NewLabel(c, "lbl", "hello")
	w := c.lookupWidget(1)
	c.Dispatch(XEvent{Type: Expose, Window: w.ID})
	if len(c.Display.Ops) != 1 || c.Display.Ops[0].Kind != "label" {
		t.Fatalf("ops = %+v", c.Display.Ops)
	}
	if c.Display.Ops[0].Arg != 5*7 {
		t.Errorf("text width = %d", c.Display.Ops[0].Arg)
	}
}

func TestSimpleMenuSelection(t *testing.T) {
	c := NewClient("t")
	m := NewSimpleMenu(c, "menu", []string{"a", "b", "c"})
	var picked []int
	m.AddCallback("callback", func(_ *Widget, ctx *event.Ctx) {
		picked = append(picked, ctx.Args.Int("index"))
	})
	c.Dispatch(XEvent{Type: ButtonRelease, Window: m.ID, Y: 20})  // entry 1
	c.Dispatch(XEvent{Type: ButtonRelease, Window: m.ID, Y: 100}) // out of range
	if len(picked) != 1 || picked[0] != 1 {
		t.Errorf("picked = %v", picked)
	}
}

func TestXTermPopupSequence(t *testing.T) {
	x := NewXTerm()
	x.Popup(30, 40)
	st := x.Client.Mod.Globals
	if st.Get("mainMenu.inited").Int() != 1 {
		t.Error("menu-init did not run")
	}
	if st.Get("mainMenu.height").Int() != 4*16 {
		t.Errorf("menu height = %d", st.Get("mainMenu.height").Int())
	}
	if st.Get("mainMenu.lastx").Int() != 30 || st.Get("mainMenu.lasty").Int() != 40 {
		t.Error("track-enter callback did not record pointer")
	}
	if st.Get("mainMenu.highlight").Int() != 40/16 {
		t.Errorf("highlight = %d", st.Get("mainMenu.highlight").Int())
	}
	// Display ops: menu-clear, menu-show, menu-highlight.
	kinds := map[string]int{}
	for _, op := range x.Client.Display.Ops {
		kinds[op.Kind]++
	}
	for _, k := range []string{"menu-clear", "menu-show", "menu-highlight"} {
		if kinds[k] != 1 {
			t.Errorf("paint %s = %d", k, kinds[k])
		}
	}
}

func TestXTermTyping(t *testing.T) {
	x := NewXTerm()
	for i := 0; i < 5; i++ {
		x.Type('a' + i)
	}
	if got := x.Client.Mod.Globals.Get("vt100.chars").Int(); got != 5 {
		t.Errorf("chars = %d", got)
	}
}

func TestGvimScrollSequence(t *testing.T) {
	g := NewGvim()
	g.Scroll(100)
	// sb.length=400, thumb=40, text.lines=1000: top=100 -> line 250.
	if got := g.TopLine(); got != 250 {
		t.Errorf("topline = %d, want 250", got)
	}
	if top := g.Client.Mod.Globals.Get("sb.top").Int(); top != 100 {
		t.Errorf("thumb top = %d", top)
	}
	// Clamping.
	g.Scroll(-5)
	if got := g.Client.Mod.Globals.Get("sb.top").Int(); got != 0 {
		t.Errorf("clamped low top = %d", got)
	}
	g.Scroll(900)
	if got := g.Client.Mod.Globals.Get("sb.top").Int(); got != 360 {
		t.Errorf("clamped high top = %d", got)
	}
	// Paint: thumb + text-region per scroll.
	kinds := map[string]int{}
	for _, op := range g.Client.Display.Ops {
		kinds[op.Kind]++
	}
	if kinds["thumb"] != 3 || kinds["text-region"] != 3 {
		t.Errorf("paint ops = %v", kinds)
	}
}

// optimizeClient profiles a driver and installs the plan over the
// client's runtime.
func optimizeClient(t *testing.T, c *Client, drive func(int), opts core.Options) {
	t.Helper()
	rec := trace.NewRecorder()
	rec.EnableHandlerProfiling()
	c.Sys.SetTracer(rec)
	drive(60)
	c.Sys.SetTracer(nil)
	prof, err := profile.Analyze(rec.Entries())
	if err != nil {
		t.Fatal(err)
	}
	opts.MergeAll = true
	if _, _, err := core.Apply(c.Sys, prof, c.Mod, opts); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizedPopupEquivalence(t *testing.T) {
	ref := NewXTerm()
	ref.Popup(30, 40)
	want := ref.Client.Mod.Globals.Snapshot()
	wantOps := len(ref.Client.Display.Ops)

	x := NewXTerm()
	optimizeClient(t, x.Client, func(n int) {
		for i := 0; i < n; i++ {
			x.Popup(30, 40)
		}
	}, core.DefaultOptions())
	x.Client.Display.Reset()
	x.Client.Sys.Stats().Reset()
	x.Popup(30, 40)
	if !x.Client.Mod.Globals.EqualSnapshot(want) {
		t.Errorf("state diverges:\nwant %v\ngot  %v", want, x.Client.Mod.Globals.Snapshot())
	}
	if len(x.Client.Display.Ops) != wantOps {
		t.Errorf("paint ops = %d, want %d", len(x.Client.Display.Ops), wantOps)
	}
	if x.Client.Sys.Stats().FastRuns.Load() == 0 {
		t.Error("popup did not use the fast path")
	}
}

func TestOptimizedScrollEquivalence(t *testing.T) {
	for _, full := range []bool{false, true} {
		ref := NewGvim()
		ref.Scroll(120)
		want := ref.Client.Mod.Globals.Snapshot()

		g := NewGvim()
		opts := core.DefaultOptions()
		opts.FullFusion = full
		if full {
			opts.Partitioned = false
		}
		optimizeClient(t, g.Client, func(n int) {
			for i := 0; i < n; i++ {
				g.Scroll(i * 3 % 360)
			}
		}, opts)
		g.Client.Sys.Stats().Reset()
		g.Scroll(120)
		if !g.Client.Mod.Globals.EqualSnapshot(want) {
			t.Errorf("full=%v: state diverges:\nwant %v\ngot  %v", full, want, g.Client.Mod.Globals.Snapshot())
		}
		if g.Client.Sys.Stats().FastRuns.Load() == 0 {
			t.Errorf("full=%v: no fast runs", full)
		}
	}
}

func TestOptimizedScrollOpensUpCallbacks(t *testing.T) {
	// With full fusion, the callback raises are spliced away: only the
	// single Scroll activation is dispatched.
	g := NewGvim()
	opts := core.DefaultOptions()
	opts.FullFusion = true
	opts.Partitioned = false
	optimizeClient(t, g.Client, func(n int) {
		for i := 0; i < n; i++ {
			g.Scroll(i % 360)
		}
	}, opts)
	g.Client.Sys.Stats().Reset()
	g.Scroll(50)
	if got := g.Client.Sys.Stats().Raises.Load(); got != 1 {
		t.Errorf("Raises = %d, want 1 (callbacks opened up)", got)
	}
}

func TestParseTranslations(t *testing.T) {
	c := NewClient("t")
	w := c.NewWidget("w", "Core", 0)
	var ran []string
	for _, name := range []string{"menu-init", "menu-display", "insert", "track"} {
		n := name
		w.AddAction(n, func(*Widget, *event.Ctx) { ran = append(ran, n) })
	}
	err := w.ParseTranslations(`
		! xterm-style table
		Ctrl<BtnDown>: menu-init() menu-display()
		<Key>:         insert()
		Btn1<Motion>:  track()
	`)
	if err != nil {
		t.Fatal(err)
	}
	c.Dispatch(XEvent{Type: ButtonPress, Window: w.ID, State: ControlMask})
	c.Dispatch(XEvent{Type: KeyPress, Window: w.ID})
	c.Dispatch(XEvent{Type: MotionNotify, Window: w.ID, State: Button1Mask})
	want := []string{"menu-init", "menu-display", "insert", "track"}
	if len(ran) != len(want) {
		t.Fatalf("ran = %v", ran)
	}
	for i := range want {
		if ran[i] != want[i] {
			t.Fatalf("ran = %v, want %v", ran, want)
		}
	}
}

func TestParseTranslationsErrors(t *testing.T) {
	c := NewClient("t")
	w := c.NewWidget("w", "Core", 0)
	bad := []string{
		"no colon here",
		"Ctrl BtnDown: act()",
		"Weird<BtnDown>: act()",
		"<Nonsense>: act()",
		"<Key>: act",
		"<Key>:",
	}
	for _, line := range bad {
		if err := w.ParseTranslations(line); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
	// Comments and blanks are fine.
	if err := w.ParseTranslations("# comment\n\n! another\n"); err != nil {
		t.Errorf("comment-only table: %v", err)
	}
}
