package xwin

import (
	"strings"
	"testing"
	"testing/quick"

	"eventopt/internal/core"
)

func TestTextTypingAndContents(t *testing.T) {
	c := NewClient("ed")
	txt := NewText(c, "buf", 10)
	txt.TypeString("hello\nworld")
	if got := txt.Contents(); got != "hello\nworld" {
		t.Errorf("contents = %q", got)
	}
	if r, col := txt.Cursor(); r != 1 || col != 5 {
		t.Errorf("cursor = %d,%d", r, col)
	}
	if txt.LineCount() != 2 {
		t.Errorf("lines = %d", txt.LineCount())
	}
	if txt.Edits != 11 {
		t.Errorf("edits = %d", txt.Edits)
	}
}

func TestTextEditingActions(t *testing.T) {
	c := NewClient("ed")
	txt := NewText(c, "buf", 10)
	txt.TypeString("abc")
	// Ctrl-H deletes previous.
	c.Dispatch(XEvent{Type: KeyPress, Window: txt.ID, State: ControlMask, Detail: 'h'})
	if txt.Contents() != "ab" {
		t.Errorf("after delete: %q", txt.Contents())
	}
	// Ctrl-B then insert in the middle.
	c.Dispatch(XEvent{Type: KeyPress, Window: txt.ID, State: ControlMask, Detail: 'b'})
	c.Dispatch(XEvent{Type: KeyPress, Window: txt.ID, Detail: 'X'})
	if txt.Contents() != "aXb" {
		t.Errorf("after middle insert: %q", txt.Contents())
	}
	// Join lines with a leading-edge delete.
	txt.TypeString("\nzz")
	txt.Move(1, -10) // clamp to start of the line
	r, col := txt.Cursor()
	if col != 0 {
		t.Fatalf("cursor = %d,%d", r, col)
	}
	txt.DeletePrevious()
	if txt.Contents() != "aXzzb" {
		t.Errorf("after join: %q", txt.Contents())
	}
	// Delete at the very start is a no-op.
	txt.Move(-10, -10)
	before := txt.Contents()
	txt.DeletePrevious()
	if txt.Contents() != before {
		t.Error("delete at origin changed the buffer")
	}
}

func TestTextScrolling(t *testing.T) {
	c := NewClient("ed")
	txt := NewText(c, "buf", 3)
	for i := 0; i < 10; i++ {
		txt.TypeString("line\n")
	}
	// Cursor followed the typing past the window: view scrolled.
	if txt.TopLine() == 0 {
		t.Error("view did not follow the cursor")
	}
	txt.ScrollTo(0)
	if txt.TopLine() != 0 {
		t.Errorf("top = %d", txt.TopLine())
	}
	txt.ScrollTo(999)
	if txt.TopLine() != txt.LineCount()-1 {
		t.Errorf("clamped top = %d", txt.TopLine())
	}
	txt.ScrollTo(-5)
	if txt.TopLine() != 0 {
		t.Errorf("clamped low top = %d", txt.TopLine())
	}
}

func TestTextOptimizedTypingEquivalence(t *testing.T) {
	input := "profile directed\noptimization of\nevent based programs"
	ref := NewText(NewClient("a"), "buf", 5)
	ref.TypeString(input)

	c := NewClient("b")
	txt := NewText(c, "buf", 5)
	optimizeClient(t, c, func(n int) {
		for i := 0; i < n; i++ {
			c.Dispatch(XEvent{Type: KeyPress, Window: txt.ID, Detail: 'x'})
			c.Dispatch(XEvent{Type: KeyPress, Window: txt.ID, State: ControlMask, Detail: 'h'})
		}
	}, core.DefaultOptions())
	c.Sys.Stats().Reset()
	txt.TypeString(input)
	if txt.Contents() != ref.Contents() {
		t.Errorf("optimized buffer %q != %q", txt.Contents(), ref.Contents())
	}
	if c.Sys.Stats().FastRuns.Load() == 0 {
		t.Error("typing did not use the fast path")
	}
}

// Property: typing random printable text (with newlines) reproduces the
// text, with the cursor at its end.
func TestQuickTextTyping(t *testing.T) {
	f := func(raw []byte) bool {
		var b strings.Builder
		for _, ch := range raw {
			switch {
			case ch == '\n' || (ch >= ' ' && ch < 127):
				b.WriteByte(ch)
			}
		}
		input := b.String()
		c := NewClient("q")
		txt := NewText(c, "buf", 4)
		txt.TypeString(input)
		return txt.Contents() == input
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
