package xwin

import (
	"fmt"
	"sort"

	"eventopt/internal/event"
	"eventopt/internal/hir"
)

// ActionProc is a native action procedure or event handler.
type ActionProc func(w *Widget, ctx *event.Ctx)

// Widget is the basic building block of an X client: a window with an
// event mask, a translation table, action procedures, callbacks and
// event handlers.
type Widget struct {
	Client *Client
	ID     WindowID
	Name   string
	Class  string

	mask         EventMask
	translations map[transKey][]string // (type, modifiers) -> action names
	actions      map[string]bool       // registered action names
	actionEvents map[transKey]event.ID
	ehEvents     map[EventType]event.ID
	cbEvents     map[string]event.ID
	pending      []pendingAction
	boundActions map[event.ID]map[string]bool

	// Geometry, used by scrollbar/menu code.
	X, Y, W, H int
}

type transKey struct {
	t    EventType
	mods uint32
}

// NewWidget creates a widget with the given event mask.
func (c *Client) NewWidget(name, class string, mask EventMask) *Widget {
	w := &Widget{
		Client: c, ID: c.nextWin, Name: name, Class: class, mask: mask,
		translations: make(map[transKey][]string),
		actions:      make(map[string]bool),
		actionEvents: make(map[transKey]event.ID),
		ehEvents:     make(map[EventType]event.ID),
		cbEvents:     make(map[string]event.ID),
		W:            100, H: 100,
	}
	c.nextWin++
	c.widgets[w.ID] = w
	return w
}

// Select widens the widget's event mask.
func (w *Widget) Select(types ...EventType) {
	for _, t := range types {
		w.mask |= t.Mask()
	}
}

// registerIntrinsics exposes painting and text metrics to HIR handlers.
func (c *Client) registerIntrinsics() {
	c.Mod.RegisterIntrinsic("paint", false, func(a []hir.Value) hir.Value {
		c.Display.Paint(WindowID(a[0].Int()), a[1].Str(), int(a[2].Int()), int(a[3].Int()), int(a[4].Int()))
		return hir.None
	})
	c.Mod.RegisterIntrinsic("text_width", true, func(a []hir.Value) hir.Value {
		return hir.IntVal(int64(len(a[0].Str())) * 7) // fixed-width font metrics
	})
}

// --- Event handlers (the most primitive mechanism) ---

// AddEventHandler binds a native procedure to one or more event types;
// it runs when any of them occurs on this widget.
func (w *Widget) AddEventHandler(name string, fn ActionProc, types ...EventType) {
	for _, t := range types {
		w.Select(t)
		id := w.eventHandlerEvent(t)
		wid := w
		w.Client.Sys.Bind(id, name, func(ctx *event.Ctx) { fn(wid, ctx) })
	}
}

// AddEventHandlerHIR binds an HIR-bodied event handler.
func (w *Widget) AddEventHandlerHIR(name string, body *hir.Function, types ...EventType) {
	for _, t := range types {
		w.Select(t)
		id := w.eventHandlerEvent(t)
		w.Client.Mod.Bind(id, name, body, event.WithBindArgs(event.A("win", int(w.ID))))
	}
}

func (w *Widget) eventHandlerEvent(t EventType) event.ID {
	if id, ok := w.ehEvents[t]; ok {
		return id
	}
	id := w.Client.Sys.Define(fmt.Sprintf("%s.eh.%s", w.Name, t))
	w.ehEvents[t] = id
	return id
}

// --- Actions and translations ---

// AddAction registers a native action procedure under a name (actions
// have client-global names; here they are registered per widget, which
// is how the Athena widgets use them).
func (w *Widget) AddAction(name string, fn ActionProc) {
	w.actions[name] = true
	wid := w
	w.bindActionHandler(name, func(ctx *event.Ctx) { fn(wid, ctx) }, nil)
}

// AddActionHIR registers an HIR action procedure.
func (w *Widget) AddActionHIR(name string, body *hir.Function) {
	w.actions[name] = true
	w.bindActionHandler(name, nil, body)
}

type pendingAction struct {
	name   string
	native event.HandlerFunc
	body   *hir.Function
}

// Actions must be bound to the translation's event after the translation
// exists; keep them and bind lazily.
func (w *Widget) bindActionHandler(name string, native event.HandlerFunc, body *hir.Function) {
	w.pending = append(w.pending, pendingAction{name: name, native: native, body: body})
	w.rebindTranslations()
}

// AddTranslation maps (event type, modifier state) to a sequence of
// action names, like an Xt translation table entry
// ("Ctrl<Btn1Down>: popup-menu()").
func (w *Widget) AddTranslation(t EventType, mods uint32, actionNames ...string) {
	w.Select(t)
	key := transKey{t: t, mods: mods}
	w.translations[key] = append([]string(nil), actionNames...)
	if _, ok := w.actionEvents[key]; !ok {
		name := fmt.Sprintf("%s.%s", w.Name, t)
		if mods != 0 {
			name = fmt.Sprintf("%s.mod%d", name, mods)
		}
		w.actionEvents[key] = w.Client.Sys.Define(name)
	}
	w.rebindTranslations()
}

// pending actions awaiting translation events.
//
// rebindTranslations (re)binds each translation's action sequence. It is
// idempotent per (translation, action) pair.
func (w *Widget) rebindTranslations() {
	for key, names := range w.translations {
		id, ok := w.actionEvents[key]
		if !ok {
			continue
		}
		bound := w.boundActions[id]
		if bound == nil {
			bound = make(map[string]bool)
			if w.boundActions == nil {
				w.boundActions = make(map[event.ID]map[string]bool)
			}
			w.boundActions[id] = bound
		}
		for order, name := range names {
			if bound[name] {
				continue
			}
			for _, p := range w.pending {
				if p.name != name {
					continue
				}
				if p.body != nil {
					w.Client.Mod.Bind(id, name, p.body, event.WithOrder(order),
						event.WithBindArgs(event.A("win", int(w.ID))))
				} else {
					w.Client.Sys.Bind(id, name, p.native, event.WithOrder(order))
				}
				bound[name] = true
				break
			}
		}
	}
}

// --- Callbacks ---

// AddCallback appends fn to the callback list of name. Issuing the
// callback executes all functions bound to the name.
func (w *Widget) AddCallback(name string, fn ActionProc) {
	id := w.CallbackEvent(name)
	wid := w
	n := fmt.Sprintf("cb_%s_%d", name, w.Client.Sys.HandlerCount(id))
	w.Client.Sys.Bind(id, n, func(ctx *event.Ctx) { fn(wid, ctx) })
}

// AddCallbackHIR appends an HIR-bodied callback function.
func (w *Widget) AddCallbackHIR(name string, body *hir.Function) {
	id := w.CallbackEvent(name)
	w.Client.Mod.Bind(id, body.Name, body, event.WithBindArgs(event.A("win", int(w.ID))))
}

// CallbackEvent resolves (defining on first use) the event behind a
// callback name. Action handlers issue the callback by raising it.
func (w *Widget) CallbackEvent(name string) event.ID {
	if id, ok := w.cbEvents[name]; ok {
		return id
	}
	id := w.Client.Sys.Define(w.CallbackEventName(name))
	w.cbEvents[name] = id
	return id
}

// CallbackEventName returns the runtime event name of a callback, for
// HIR raise instructions.
func (w *Widget) CallbackEventName(name string) string {
	return fmt.Sprintf("%s.cb.%s", w.Name, name)
}

// ActionEvent returns the runtime event of a translation, for tests and
// the benchmark harness (event.NoID when absent).
func (w *Widget) ActionEvent(t EventType, mods uint32) event.ID {
	if id, ok := w.actionEvents[transKey{t: t, mods: mods}]; ok {
		return id
	}
	return event.NoID
}

// Translations lists the widget's translation entries, sorted, for
// diagnostics.
func (w *Widget) Translations() []string {
	var out []string
	for key, names := range w.translations {
		out = append(out, fmt.Sprintf("%s/mod%d -> %v", key.t, key.mods, names))
	}
	sort.Strings(out)
	return out
}

// route maps an incoming X event to the runtime event that handles it:
// the translation table first (exact modifier match, then the
// modifier-free entry), then plain event handlers.
func (w *Widget) route(ev XEvent) (event.ID, []event.Arg) {
	args := []event.Arg{
		event.A("win", int(ev.Window)), event.A("x", ev.X), event.A("y", ev.Y),
		event.A("state", int(ev.State)), event.A("detail", ev.Detail),
	}
	if id, ok := w.actionEvents[transKey{t: ev.Type, mods: ev.State}]; ok {
		return id, args
	}
	if id, ok := w.actionEvents[transKey{t: ev.Type, mods: 0}]; ok && ev.State == 0 {
		return id, args
	}
	if id, ok := w.ehEvents[ev.Type]; ok {
		return id, args
	}
	return event.NoID, nil
}
