package xwin

import (
	"fmt"
	"strings"
)

// ParseTranslations parses an Xt-style translation table and installs
// each entry on the widget. The grammar is the practical subset the
// paper's applications use:
//
//	line   := [modifier...] '<' event '>' ':' action+
//	action := name '(' ')'
//
// as in the xterm fragment
//
//	Ctrl<BtnDown>: menu-init() menu-display()
//	<Key>:         insert-char()
//
// Supported modifiers: Ctrl, Shift, Btn1 (pointer button held).
// Supported event names: BtnDown, BtnUp, Key, KeyUp, Motion, Expose,
// Enter, Leave, Focus, FocusOut — the subset maps onto the core X event
// types. Lines may be separated by newlines; '!' or '#' starts a
// comment line. Actions must be registered (AddAction/AddActionHIR)
// before or after parsing; binding is re-resolved on registration.
func (w *Widget) ParseTranslations(table string) error {
	for ln, raw := range strings.Split(table, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "#") {
			continue
		}
		if err := w.parseTranslationLine(line); err != nil {
			return fmt.Errorf("xwin: translations line %d: %w", ln+1, err)
		}
	}
	return nil
}

var translationEvents = map[string]EventType{
	"BtnDown":  ButtonPress,
	"BtnUp":    ButtonRelease,
	"Key":      KeyPress,
	"KeyDown":  KeyPress,
	"KeyUp":    KeyRelease,
	"Motion":   MotionNotify,
	"Expose":   Expose,
	"Enter":    EnterNotify,
	"Leave":    LeaveNotify,
	"Focus":    FocusIn,
	"FocusOut": FocusOut,
}

var translationModifiers = map[string]uint32{
	"Ctrl":  ControlMask,
	"Shift": ShiftMask,
	"Btn1":  Button1Mask,
}

func (w *Widget) parseTranslationLine(line string) error {
	colon := strings.Index(line, ":")
	if colon < 0 {
		return fmt.Errorf("missing ':' in %q", line)
	}
	lhs := strings.TrimSpace(line[:colon])
	rhs := strings.TrimSpace(line[colon+1:])

	open := strings.Index(lhs, "<")
	closeIdx := strings.Index(lhs, ">")
	if open < 0 || closeIdx < open {
		return fmt.Errorf("missing <event> in %q", lhs)
	}
	var mods uint32
	for _, tok := range strings.Fields(lhs[:open]) {
		m, ok := translationModifiers[tok]
		if !ok {
			return fmt.Errorf("unknown modifier %q", tok)
		}
		mods |= m
	}
	evName := strings.TrimSpace(lhs[open+1 : closeIdx])
	et, ok := translationEvents[evName]
	if !ok {
		return fmt.Errorf("unknown event %q", evName)
	}

	var actions []string
	for _, tok := range strings.Fields(rhs) {
		name, okA := strings.CutSuffix(tok, "()")
		if !okA || name == "" {
			return fmt.Errorf("malformed action %q (expected name())", tok)
		}
		actions = append(actions, name)
	}
	if len(actions) == 0 {
		return fmt.Errorf("no actions in %q", line)
	}
	w.AddTranslation(et, mods, actions...)
	return nil
}
