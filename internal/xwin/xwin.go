// Package xwin simulates the X Window system architecture of paper
// section 2.3 closely enough to reproduce the section 4.3 experiments: an
// X server delivering typed events to clients, clients composed of
// widgets, and the three X handler mechanisms — event handlers bound to
// event types through masks, callback functions bound to callback names,
// and action procedures reached through per-widget translation tables.
//
// All three mechanisms map onto the general event model exactly as the
// paper describes: each (widget, X event type) pair that the widget
// selects becomes an event in the runtime, its action procedures are the
// bound handlers, and issuing a callback name raises the callback's own
// event, whose handlers are the registered callback functions. The
// optimizer therefore applies unchanged: action handlers merge
// (Fig. 13's Popup and Scroll rows), and "opening up" the callbacks —
// the further step the paper mentions — is subsumption of the callback
// raise.
package xwin

import (
	"fmt"

	"eventopt/internal/event"
	"eventopt/internal/hirrt"
)

// EventType enumerates the core X protocol event types (X11 numbers
// events 2 through 34 — the "33 basic events" of the paper).
type EventType uint8

// The 33 core X event types.
const (
	KeyPress EventType = iota + 2
	KeyRelease
	ButtonPress
	ButtonRelease
	MotionNotify
	EnterNotify
	LeaveNotify
	FocusIn
	FocusOut
	KeymapNotify
	Expose
	GraphicsExpose
	NoExpose
	VisibilityNotify
	CreateNotify
	DestroyNotify
	UnmapNotify
	MapNotify
	MapRequest
	ReparentNotify
	ConfigureNotify
	ConfigureRequest
	GravityNotify
	ResizeRequest
	CirculateNotify
	CirculateRequest
	PropertyNotify
	SelectionClear
	SelectionRequest
	SelectionNotify
	ColormapNotify
	ClientMessage
	MappingNotify
)

const (
	minEventType = KeyPress
	maxEventType = MappingNotify
	// NumEventTypes is the number of core X event types.
	NumEventTypes = int(maxEventType-minEventType) + 1
)

var eventTypeNames = map[EventType]string{
	KeyPress: "KeyPress", KeyRelease: "KeyRelease",
	ButtonPress: "ButtonPress", ButtonRelease: "ButtonRelease",
	MotionNotify: "MotionNotify", EnterNotify: "EnterNotify",
	LeaveNotify: "LeaveNotify", FocusIn: "FocusIn", FocusOut: "FocusOut",
	KeymapNotify: "KeymapNotify", Expose: "Expose",
	GraphicsExpose: "GraphicsExpose", NoExpose: "NoExpose",
	VisibilityNotify: "VisibilityNotify", CreateNotify: "CreateNotify",
	DestroyNotify: "DestroyNotify", UnmapNotify: "UnmapNotify",
	MapNotify: "MapNotify", MapRequest: "MapRequest",
	ReparentNotify: "ReparentNotify", ConfigureNotify: "ConfigureNotify",
	ConfigureRequest: "ConfigureRequest", GravityNotify: "GravityNotify",
	ResizeRequest: "ResizeRequest", CirculateNotify: "CirculateNotify",
	CirculateRequest: "CirculateRequest", PropertyNotify: "PropertyNotify",
	SelectionClear: "SelectionClear", SelectionRequest: "SelectionRequest",
	SelectionNotify: "SelectionNotify", ColormapNotify: "ColormapNotify",
	ClientMessage: "ClientMessage", MappingNotify: "MappingNotify",
}

// String names the event type.
func (t EventType) String() string {
	if n, ok := eventTypeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("EventType(%d)", uint8(t))
}

// Mask returns the event-mask bit of the type.
func (t EventType) Mask() EventMask {
	if t < minEventType || t > maxEventType {
		return 0
	}
	return 1 << (t - minEventType)
}

// EventMask selects which event types a widget receives ("X clients may
// choose to respond to any of these based on event masks that are
// specified at bind time").
type EventMask uint64

// Modifier state bits carried in an XEvent.
const (
	ShiftMask   = 1 << 0
	ControlMask = 1 << 2
	Button1Mask = 1 << 8
)

// WindowID identifies a widget's window within a client.
type WindowID uint32

// XEvent is "a packet of data sent by the server to the client". The
// fields cover what the reproduced applications need.
type XEvent struct {
	Type   EventType
	Window WindowID
	X, Y   int
	State  uint32 // modifier mask
	Detail int    // button / keycode
}

// Server is the X server simulation: it owns displays' device state and
// forwards events to connected clients. Events can arrive in any order;
// each client queues them.
type Server struct {
	clients []*Client
}

// NewServer creates an empty server.
func NewServer() *Server { return &Server{} }

// Connect attaches a client to the server.
func (s *Server) Connect(c *Client) { s.clients = append(s.clients, c) }

// Send routes one event to every client that has a window with a
// matching ID (window IDs are client-scoped; the paper's single-display
// setup has one client per application).
func (s *Server) Send(ev XEvent) {
	for _, c := range s.clients {
		if c.lookupWidget(ev.Window) != nil {
			c.Enqueue(ev)
		}
	}
}

// Client is an X client application: a widget tree over an event
// runtime. The runtime's queue plays the role of the Xlib event queue,
// and processing an X event is a synchronous activation, "similar to
// synchronous activation in the general model".
type Client struct {
	Name string
	Sys  *event.System
	Mod  *hirrt.Module

	widgets map[WindowID]*Widget
	nextWin WindowID

	// Display is the client's in-memory frame buffer: paint operations
	// from widget handlers land here so handler work is observable.
	Display *DisplayList

	// DiscardedEvents counts events dropped because no widget selected
	// them (mask mismatch or unknown window).
	DiscardedEvents int
}

// NewClient creates a client with its own event runtime.
func NewClient(name string, opts ...event.Option) *Client {
	c := &Client{
		Name:    name,
		Sys:     event.New(opts...),
		widgets: make(map[WindowID]*Widget),
		nextWin: 1,
		Display: NewDisplayList(),
	}
	c.Mod = hirrt.NewModule(c.Sys)
	c.registerIntrinsics()
	return c
}

func (c *Client) lookupWidget(w WindowID) *Widget { return c.widgets[w] }

// Widgets returns all widgets of the client.
func (c *Client) Widgets() []*Widget {
	out := make([]*Widget, 0, len(c.widgets))
	for _, w := range c.widgets {
		out = append(out, w)
	}
	return out
}

// Enqueue adds an X event to the client's queue without processing it.
func (c *Client) Enqueue(ev XEvent) {
	w := c.lookupWidget(ev.Window)
	if w == nil || w.mask&ev.Type.Mask() == 0 {
		c.DiscardedEvents++
		return
	}
	id, args := w.route(ev)
	if id == event.NoID {
		c.DiscardedEvents++
		return
	}
	c.Sys.RaiseAsync(id, args...)
}

// Dispatch processes an X event synchronously, start to finish — the
// client's event-loop body.
func (c *Client) Dispatch(ev XEvent) {
	w := c.lookupWidget(ev.Window)
	if w == nil || w.mask&ev.Type.Mask() == 0 {
		c.DiscardedEvents++
		return
	}
	id, args := w.route(ev)
	if id == event.NoID {
		c.DiscardedEvents++
		return
	}
	c.Sys.Raise(id, args...)
}

// Flush drains the client's queue (the "while XPending" loop).
func (c *Client) Flush() int { return c.Sys.Drain() }

// DisplayList records paint operations.
type DisplayList struct {
	Ops []PaintOp
}

// PaintOp is one recorded drawing command.
type PaintOp struct {
	Widget WindowID
	Kind   string
	X, Y   int
	Arg    int
}

// NewDisplayList returns an empty display list.
func NewDisplayList() *DisplayList { return &DisplayList{} }

// Paint appends an operation.
func (d *DisplayList) Paint(w WindowID, kind string, x, y, arg int) {
	d.Ops = append(d.Ops, PaintOp{Widget: w, Kind: kind, X: x, Y: y, Arg: arg})
}

// Reset clears the list.
func (d *DisplayList) Reset() { d.Ops = d.Ops[:0] }
