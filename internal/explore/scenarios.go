package explore

import (
	"fmt"
	"sort"

	"eventopt/internal/adaptive"
	"eventopt/internal/core"
	"eventopt/internal/ctp"
	"eventopt/internal/event"
	"eventopt/internal/profile"
	"eventopt/internal/seccomm"
	"eventopt/internal/telemetry"
	"eventopt/internal/trace"
)

// This file defines the explorable workloads: seccomm, the video-player
// transport, a rebind-churn workload driven by the adaptive controller,
// and a quarantine/dead-letter fault ladder. Each scenario builds
// deterministically (virtual clocks, fixed keys and payloads), so the
// explorer can replay any schedule prefix exactly.

func sysOpts(vc *event.VirtualClock, domains int, hook event.SchedHook, extra ...event.Option) []event.Option {
	opts := []event.Option{event.WithClock(vc), event.WithDomains(domains)}
	if hook != nil {
		opts = append(opts, event.WithSchedHook(hook))
	}
	return append(opts, extra...)
}

// seccommConfig is the XOR-only endpoint configuration: the privacy
// transform is cheap and deterministic, which keeps per-schedule cost
// low without changing the chain structure the optimizer sees.
func seccommConfig() seccomm.Config {
	return seccomm.Config{XORKey: []byte("explore-key")}
}

// seccommProfile runs a throwaway endpoint through both chains and
// returns the analyzed profile. Ciphertexts of the given messages are
// returned alongside, for injecting packets during exploration.
func seccommProfile(packets [][]byte) (*profile.Profile, [][]byte, error) {
	ep, err := seccomm.New(seccommConfig())
	if err != nil {
		return nil, nil, err
	}
	var lastPkt []byte
	ep.OnSend(func(pkt []byte) { lastPkt = append([]byte(nil), pkt...) })

	cts := make([][]byte, len(packets))
	for i, msg := range packets {
		ep.Push(msg)
		cts[i] = lastPkt
	}

	rec := trace.NewRecorder()
	rec.EnableHandlerProfiling()
	ep.Sys.SetTracer(rec)
	for i := 0; i < 3; i++ {
		ep.Push([]byte("profile-push"))
		ep.HandlePacket(lastPkt)
	}
	ep.Sys.SetTracer(nil)
	prof, err := profile.Analyze(rec.Entries())
	return prof, cts, err
}

// SeccommScenario explores the secure-communication endpoint on two
// domains: the push chain enters through domain 0, the pop chain through
// domain 1 (IDs alternate across domains). One thread pushes
// application messages, another injects ciphertext packets from the
// link; the endpoint's own send output also loops back into the pop
// chain. The optimized variant installs the profile-directed plan over
// both chains.
func SeccommScenario() (Scenario, error) {
	prof, cts, err := seccommProfile([][]byte{[]byte("xray"), []byte("york"), []byte("zulu")})
	if err != nil {
		return Scenario{}, err
	}
	sc := Scenario{
		Name: "seccomm",
		// Every domain step may run nested cross-domain raises.
		StepFP: func(int) Footprint { return TouchAll },
	}
	sc.Build = func(optimized bool, hook event.SchedHook) (*Instance, error) {
		vc := event.NewVirtualClock()
		ep, err := seccomm.New(seccommConfig(), sysOpts(vc, 2, hook)...)
		if err != nil {
			return nil, err
		}
		var delivered []string
		ep.OnDeliver(func(msg []byte) { delivered = append(delivered, string(msg)) })
		// Loop the link back: everything pushed comes around through the
		// pop chain as an asynchronous cross-domain handoff.
		ep.OnSend(func(pkt []byte) {
			ep.Sys.RaiseAsync(ep.MsgFromNet, event.A("msg", append([]byte(nil), pkt...)))
		})
		if optimized {
			if _, _, err := core.Apply(ep.Sys, prof, ep.Mod, core.DefaultOptions()); err != nil {
				return nil, err
			}
		}
		inst := &Instance{
			Sys:   ep.Sys,
			Clock: vc,
			Threads: []Thread{
				{Name: "sender", Ops: []Op{
					{Name: "push-alpha", FP: Dom(0), Run: func(*Instance) {
						ep.Sys.RaiseAsync(ep.MsgFromUser, event.A("msg", []byte("alpha")))
					}},
					{Name: "push-bravo", FP: Dom(0), Run: func(*Instance) {
						ep.Sys.RaiseAsync(ep.MsgFromUser, event.A("msg", []byte("bravo")))
					}},
					{Name: "push-coral", FP: Dom(0), Run: func(*Instance) {
						ep.Sys.RaiseAsync(ep.MsgFromUser, event.A("msg", []byte("coral")))
					}},
				}},
				{Name: "link", Ops: []Op{
					{Name: "pkt-xray", FP: Dom(1), Run: func(*Instance) {
						ep.Sys.RaiseAsync(ep.MsgFromNet, event.A("msg", cts[0]))
					}},
					{Name: "pkt-york", FP: Dom(1), Run: func(*Instance) {
						ep.Sys.RaiseAsync(ep.MsgFromNet, event.A("msg", cts[1]))
					}},
					{Name: "pkt-zulu", FP: Dom(1), Run: func(*Instance) {
						ep.Sys.RaiseAsync(ep.MsgFromNet, event.A("msg", cts[2]))
					}},
				}},
			},
			Observe: func() any {
				return struct {
					Delivered []string
					Errors    int
				}{delivered, ep.Errors}
			},
		}
		return inst, nil
	}
	return sc, nil
}

// videoConfig is a scaled-down transport: small window and short timer
// periods so a handful of clock advances exercises acknowledgments,
// controller firings and sampling inside the horizon.
func videoConfig() ctp.Config {
	return ctp.Config{
		MTU:               400,
		FECInterval:       4,
		Window:            8,
		RTT:               20e6, // 20ms
		RetransmitTimeout: 80e6,
		ControllerPeriod:  60e6,
		SamplePeriod:      45e6,
		MaxRetransmits:    2,
	}
}

func videoProfile() (*profile.Profile, error) {
	vc := event.NewVirtualClock()
	s, err := ctp.New(videoConfig(), event.WithClock(vc))
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder()
	rec.EnableHandlerProfiling()
	s.Sys.SetTracer(rec)
	s.Start()
	for i := 0; i < 4; i++ {
		s.SendFrame(make([]byte, 900), i%2 == 0)
	}
	s.Sys.DrainFor(150e6)
	s.Sys.SetTracer(nil)
	return profile.Analyze(rec.Entries())
}

// VideoPlayerScenario explores the video player's transport protocol on
// two domains under virtual time: frames enter synchronously, while
// acknowledgments, retransmission deadlines, the congestion controller
// and the sampler all arrive through the timer heap, so clock-advance
// choices interleave with frame submission. The optimized variant
// installs the plan built from a profiled throwaway run (the paper's
// Fig. 8 chain).
func VideoPlayerScenario() (Scenario, error) {
	prof, err := videoProfile()
	if err != nil {
		return Scenario{}, err
	}
	sc := Scenario{
		Name:    "videoplayer",
		Horizon: 150e6, // ctp's clocks re-arm forever; bound virtual time
		StepFP:  func(int) Footprint { return TouchAll },
	}
	sc.Build = func(optimized bool, hook event.SchedHook) (*Instance, error) {
		vc := event.NewVirtualClock()
		s, err := ctp.New(videoConfig(), sysOpts(vc, 2, hook)...)
		if err != nil {
			return nil, err
		}
		s.Start()
		if optimized {
			if _, _, err := core.Apply(s.Sys, prof, s.Mod, core.DefaultOptions()); err != nil {
				return nil, err
			}
		}
		frame := func(n int, hi bool) Op {
			return Op{Name: fmt.Sprintf("frame-%d", n), FP: TouchAll, Run: func(*Instance) {
				s.SendFrame(make([]byte, 900), hi)
			}}
		}
		inst := &Instance{
			Sys:   s.Sys,
			Clock: vc,
			Threads: []Thread{
				{Name: "app", Ops: []Op{frame(1, true), frame(2, false)}},
				{Name: "app2", Ops: []Op{frame(3, false)}},
			},
			Observe: func() any {
				st := s.Stats
				return struct{ Frames, Segments, Delivered, Acked int }{
					st.FramesSent, st.Segments, st.Delivered, st.Acked}
			},
		}
		return inst, nil
	}
	return sc, nil
}

// RebindChurnScenario explores registry churn racing the adaptive
// controller: one thread raises through a two-event chain, one unbinds
// and rebinds the downstream handler (bumping binding versions under
// the optimizer's feet), and one drives controller ticks that promote
// and demote fast paths from live telemetry. The generic variant runs
// the same schedule with the controller ops as no-ops, so every
// promotion, stale-guard fallback and demotion must be semantically
// invisible.
func RebindChurnScenario() Scenario {
	sc := Scenario{
		Name:   "rebind-churn",
		StepFP: func(int) Footprint { return TouchAll },
	}
	sc.Build = func(optimized bool, hook event.SchedHook) (*Instance, error) {
		vc := event.NewVirtualClock()
		tel := event.WithTelemetry(telemetry.Config{SampleEvery: 1, TimeSampleEvery: 1})
		s := event.New(sysOpts(vc, 2, hook, tel)...)
		ping := s.Define("ping") // domain 0
		pong := s.Define("pong") // domain 1
		var pongRuns, pingRuns int
		s.Bind(ping, "ping1", func(ctx *event.Ctx) {
			pingRuns++
			ctx.Raise(pong)
		})
		pongFn := func(ctx *event.Ctx) { pongRuns++ }
		cur := s.Bind(pong, "pong1", pongFn)

		tick := func(*Instance) {}
		if optimized {
			ctrl, err := adaptive.New(s, nil, adaptive.Policy{
				Alpha:              1,
				PromoteThreshold:   1,
				CooldownTicks:      1,
				DeoptCooldownTicks: 1,
				MinGainNs:          -1, // promote on traversal evidence alone
				MaxPlans:           4,
			})
			if err != nil {
				return nil, err
			}
			tick = func(*Instance) { ctrl.Tick() }
		}
		raise := func(n int) Op {
			return Op{Name: fmt.Sprintf("raise-%d", n), FP: Dom(0), Run: func(*Instance) {
				s.RaiseAsync(ping)
			}}
		}
		inst := &Instance{
			Sys:   s,
			Clock: vc,
			Threads: []Thread{
				{Name: "raiser", Ops: []Op{raise(1), raise(2), raise(3), raise(4)}},
				{Name: "churn", Ops: []Op{
					{Name: "unbind-pong", FP: TouchAll, Run: func(*Instance) { s.Unbind(cur) }},
					{Name: "rebind-pong", FP: TouchAll, Run: func(*Instance) { cur = s.Bind(pong, "pong1", pongFn) }},
				}},
				{Name: "ctrl", Ops: []Op{
					{Name: "tick-1", FP: TouchAll, Run: tick},
					{Name: "tick-2", FP: TouchAll, Run: tick},
				}},
			},
			Observe: func() any {
				return struct{ Ping, Pong int }{pingRuns, pongRuns}
			},
		}
		return inst, nil
	}
	return sc
}

// QuarantineLadderScenario explores the fault-supervision ladder across
// two domains: a handler that panics on demand, async retry with
// backoff timers, dead-lettering into the second domain, quarantine
// tripping and timed re-admission. The optimized variant installs a
// manual super-handler over the faulting event, so faults take the
// deopt-and-replay path; retries, dead letters and the final observable
// state must match the generic run exactly.
func QuarantineLadderScenario() Scenario {
	sc := Scenario{
		Name:   "quarantine-ladder",
		StepFP: func(int) Footprint { return TouchAll },
	}
	sc.Build = func(optimized bool, hook event.SchedHook) (*Instance, error) {
		vc := event.NewVirtualClock()
		s := event.New(sysOpts(vc, 2, hook,
			event.WithFaultConfig(event.FaultConfig{
				Policy:           event.Quarantine,
				FailureThreshold: 2,
				Backoff:          10e6,
			}),
			event.WithRetryConfig(event.RetryConfig{
				MaxAttempts: 2,
				Backoff:     5e6,
				DeadLetter:  "dead",
			}),
		)...)
		work := s.Define("work") // domain 0
		dead := s.Define("dead") // domain 1

		var done []int
		var deadLetters []string
		workFn := func(ctx *event.Ctx) {
			n := ctx.Args.Int("n")
			if n < 0 {
				panic(fmt.Sprintf("bad payload %d", n))
			}
			done = append(done, n)
		}
		s.Bind(work, "worker", workFn)
		s.Bind(dead, "undertaker", func(ctx *event.Ctx) {
			deadLetters = append(deadLetters,
				fmt.Sprintf("%s/%d", ctx.Args.String("event"), ctx.Args.Int("attempts")))
		})

		if optimized {
			sh := &event.SuperHandler{
				Entry: work,
				Segments: []event.Segment{{
					Event: work, EventName: "work", Version: s.Version(work),
					Steps: []event.Step{{Event: work, EventName: "work", Handler: "worker", Fn: workFn}},
				}},
			}
			if err := s.InstallFastPath(sh); err != nil {
				return nil, err
			}
		}
		submit := func(name string, n int) Op {
			return Op{Name: name, FP: Dom(0), Run: func(*Instance) {
				s.RaiseAsync(work, event.A("n", n))
			}}
		}
		inst := &Instance{
			Sys:   s,
			Clock: vc,
			Threads: []Thread{
				{Name: "good", Ops: []Op{submit("good-1", 1), submit("good-2", 2), submit("good-3", 3)}},
				{Name: "bad", Ops: []Op{submit("bad-1", -1), submit("bad-2", -2)}},
			},
			Observe: func() any {
				ds := append([]int(nil), done...)
				sort.Ints(ds)
				dl := append([]string(nil), deadLetters...)
				sort.Strings(dl)
				return struct {
					Done []int
					Dead []string
				}{ds, dl}
			},
		}
		return inst, nil
	}
	return sc
}

// AsyncPipelineCoverage accumulates, across every explored schedule,
// how often the optimized variant's speculative coalescing took each
// branch. The explorer's equivalence check never sees these numbers
// (route counters differ between variants by design); the test asserts
// both branches were exercised.
type AsyncPipelineCoverage struct {
	Coalesced int64 // async raises captured as continuations
	Fallbacks int64 // async raises demoted to a real enqueue
}

// AsyncPipelineScenario explores speculative async chain merging on a
// two-domain pipeline: produce and process live on domain 0, deliver on
// domain 1. Handlers chain produce ~> process ~> deliver through
// asynchronous raises. The optimized variant installs an async-aware
// plan (AsyncChains) built from a manually-weighted event graph, so the
// produce super-handler covers the whole pipeline: its interior raise
// of process is speculatively coalesced when domain 0's queue permits,
// while the cross-domain raise of deliver is captured into domain 1's
// handoff slot (or enqueued for real when domain 1 is busy). A rival
// thread raises process directly, forcing queue-not-empty fallbacks on
// schedules where it gets ahead of the producer. Every schedule must observe the exact generic delivery
// order and stats.
func AsyncPipelineScenario() (Scenario, *AsyncPipelineCoverage) {
	cov := &AsyncPipelineCoverage{}
	g := profile.NewEventGraph()
	// IDs are assigned in Define order below: produce=first (domain 0),
	// deliver=second (domain 1), process=third (domain 0). The graph uses
	// the same order, purely-async edges, and full dominance.
	sc := Scenario{
		Name: "async-pipeline",
		StepFP: func(d int) Footprint {
			if d == 1 {
				return Dom(1) // deliver handlers never leave domain 1
			}
			return Dom(0, 1) // domain-0 steps may hand off to domain 1
		},
	}
	sc.Build = func(optimized bool, hook event.SchedHook) (*Instance, error) {
		vc := event.NewVirtualClock()
		s := event.New(sysOpts(vc, 2, hook)...)
		produce := s.Define("produce") // domain 0
		deliver := s.Define("deliver") // domain 1
		process := s.Define("process") // domain 0

		var delivered []int
		s.Bind(produce, "producer", func(ctx *event.Ctx) {
			ctx.RaiseAsync(process, event.A("n", ctx.Args.Int("n")))
		})
		s.Bind(process, "processor", func(ctx *event.Ctx) {
			ctx.RaiseAsync(deliver, event.A("n", ctx.Args.Int("n")*10))
		})
		s.Bind(deliver, "sink", func(ctx *event.Ctx) {
			delivered = append(delivered, ctx.Args.Int("n"))
		})

		if optimized {
			if g.NumEdges() == 0 {
				g.SetName(produce, "produce")
				g.SetName(process, "process")
				g.SetName(deliver, "deliver")
				g.AddEdge(produce, process, 100, 0) // purely async
				g.AddEdge(process, deliver, 100, 0)
			}
			prof := profile.GraphProfile(g)
			opts := core.Options{
				Subsume: true, GraphChains: true, AsyncChains: true,
				Partitioned: true, MaxChainLen: 8, Threshold: 1,
			}
			if _, _, err := core.Apply(s, prof, nil, opts); err != nil {
				return nil, err
			}
		}
		produceOp := func(n int) Op {
			return Op{Name: fmt.Sprintf("produce-%d", n), FP: Dom(0), Run: func(*Instance) {
				s.RaiseAsync(produce, event.A("n", n))
			}}
		}
		rivalOp := func(n int) Op {
			return Op{Name: fmt.Sprintf("rival-%d", n), FP: Dom(0), Run: func(*Instance) {
				s.RaiseAsync(process, event.A("n", n))
			}}
		}
		inst := &Instance{
			Sys:   s,
			Clock: vc,
			Threads: []Thread{
				{Name: "producer", Ops: []Op{produceOp(1), produceOp(2), produceOp(3), produceOp(4)}},
				{Name: "rival", Ops: []Op{rivalOp(7), rivalOp(8)}},
			},
			Observe: func() any {
				if optimized {
					st := s.StatsAggregate()
					cov.Coalesced += st.Coalesced
					cov.Fallbacks += st.CoalesceFallbacks
				}
				return struct{ Delivered []int }{append([]int(nil), delivered...)}
			},
		}
		return inst, nil
	}
	return sc, cov
}

// XDomainPipelineCoverage accumulates, across every explored schedule,
// how often the optimized variant's cross-domain handoff took each
// branch. Like AsyncPipelineCoverage these are route counters the
// equivalence check deliberately ignores; the test asserts both
// branches were exercised so the proof is not vacuous.
type XDomainPipelineCoverage struct {
	Handoffs  int64 // continuations captured into a target domain's slot
	Fallbacks int64 // cross-domain raises demoted to a real enqueue
}

// XDomainPipelineScenario explores cross-domain continuation handoff on
// a pipeline that ping-pongs between domains: produce (domain 0) ~>
// relay (domain 1) ~> deliver (domain 0), chained through asynchronous
// raises. The optimized variant installs an async-aware plan over the
// whole pipeline, so both interior raises cross a domain edge: each is
// captured into the target domain's handoff slot when that domain is
// verifiably idle, and demoted to a real enqueue otherwise. A rival
// thread raises relay directly, landing activations in domain 1's queue
// so schedules exist where the handoff guard must refuse. Every
// schedule must observe the exact generic delivery order and stats.
func XDomainPipelineScenario() (Scenario, *XDomainPipelineCoverage) {
	cov := &XDomainPipelineCoverage{}
	g := profile.NewEventGraph()
	sc := Scenario{
		Name: "xdomain-pipeline",
		// Every step on either domain can hand a continuation to the
		// other (produce's chain reaches into domain 1, relay's reaches
		// back into domain 0), so all steps conflict.
		StepFP: func(int) Footprint { return TouchAll },
	}
	sc.Build = func(optimized bool, hook event.SchedHook) (*Instance, error) {
		vc := event.NewVirtualClock()
		s := event.New(sysOpts(vc, 2, hook)...)
		produce := s.Define("produce") // domain 0
		relay := s.Define("relay")     // domain 1
		deliver := s.Define("deliver") // domain 0

		var delivered []int
		s.Bind(produce, "producer", func(ctx *event.Ctx) {
			ctx.RaiseAsync(relay, event.A("n", ctx.Args.Int("n")))
		})
		s.Bind(relay, "relayer", func(ctx *event.Ctx) {
			ctx.RaiseAsync(deliver, event.A("n", ctx.Args.Int("n")+100))
		})
		s.Bind(deliver, "sink", func(ctx *event.Ctx) {
			delivered = append(delivered, ctx.Args.Int("n"))
		})

		if optimized {
			if g.NumEdges() == 0 {
				g.SetName(produce, "produce")
				g.SetName(relay, "relay")
				g.SetName(deliver, "deliver")
				g.AddEdge(produce, relay, 100, 0) // purely async
				g.AddEdge(relay, deliver, 100, 0)
			}
			prof := profile.GraphProfile(g)
			opts := core.Options{
				Subsume: true, GraphChains: true, AsyncChains: true,
				Partitioned: true, MaxChainLen: 8, Threshold: 1,
			}
			if _, _, err := core.Apply(s, prof, nil, opts); err != nil {
				return nil, err
			}
		}
		produceOp := func(n int) Op {
			return Op{Name: fmt.Sprintf("produce-%d", n), FP: Dom(0), Run: func(*Instance) {
				s.RaiseAsync(produce, event.A("n", n))
			}}
		}
		rivalOp := func(n int) Op {
			return Op{Name: fmt.Sprintf("rival-%d", n), FP: Dom(1), Run: func(*Instance) {
				s.RaiseAsync(relay, event.A("n", n))
			}}
		}
		inst := &Instance{
			Sys:   s,
			Clock: vc,
			Threads: []Thread{
				{Name: "producer", Ops: []Op{produceOp(1), produceOp(2), produceOp(3), produceOp(4)}},
				{Name: "rival", Ops: []Op{rivalOp(7), rivalOp(8)}},
			},
			Observe: func() any {
				if optimized {
					st := s.StatsAggregate()
					cov.Handoffs += st.XDomainHandoffs
					cov.Fallbacks += st.XDomainFallbacks
				}
				return struct{ Delivered []int }{append([]int(nil), delivered...)}
			},
		}
		return inst, nil
	}
	return sc, cov
}

// SeededBugScenario is the harness's own sensitivity check: the
// "optimized" variant installs, mid-schedule, a super-handler whose
// guard version is correct but whose body is stale — it raises yOld
// where the current binding raises yNew. Schedules where a raise runs
// after the install diverge from the generic run; schedules where every
// raise pops first pass. The explorer must find both kinds.
func SeededBugScenario() Scenario {
	sc := Scenario{
		Name:   "seeded-bug",
		StepFP: func(int) Footprint { return TouchAll },
	}
	sc.Build = func(optimized bool, hook event.SchedHook) (*Instance, error) {
		vc := event.NewVirtualClock()
		s := event.New(sysOpts(vc, 2, hook)...)
		x := s.Define("x")
		yNew := s.Define("yNew")
		yOld := s.Define("yOld")
		s.Bind(x, "hx", func(ctx *event.Ctx) { ctx.Raise(yNew) })
		s.Bind(yNew, "hNew", func(*event.Ctx) {})
		s.Bind(yOld, "hOld", func(*event.Ctx) {})

		install := func(*Instance) {}
		if optimized {
			install = func(*Instance) {
				sh := &event.SuperHandler{
					Entry: x,
					Segments: []event.Segment{{
						Event: x, EventName: "x", Version: s.Version(x),
						// Stale body: compiled against a superseded binding.
						Steps: []event.Step{{Event: x, EventName: "x", Handler: "hx",
							Fn: func(ctx *event.Ctx) { ctx.Raise(yOld) }}},
					}},
				}
				s.InstallFastPath(sh)
			}
		}
		inst := &Instance{
			Sys:   s,
			Clock: vc,
			Threads: []Thread{
				{Name: "installer", Ops: []Op{{Name: "install-stale", FP: TouchAll, Run: install}}},
				{Name: "raiser", Ops: []Op{
					{Name: "raise-1", FP: Dom(0), Run: func(*Instance) { s.RaiseAsync(x) }},
					{Name: "raise-2", FP: Dom(0), Run: func(*Instance) { s.RaiseAsync(x) }},
				}},
			},
			Observe: func() any { return nil },
		}
		return inst, nil
	}
	return sc
}
