package explore

import (
	"strings"
	"testing"
	"time"

	"eventopt/internal/event"
	"eventopt/internal/trace"
)

// failReport renders the first few failures of a result for t.Fatalf.
func failReport(r Result) string {
	var b strings.Builder
	for i, f := range r.Failures {
		if i >= 3 {
			b.WriteString("…\n")
			break
		}
		b.WriteString(f.String())
		b.WriteString("\n")
	}
	return b.String()
}

// boundedOpts is the CI exploration mode of the ISSUE: preemption bound
// 2 with a schedule cap and a per-scenario time cap.
func boundedOpts(maxSchedules int) Options {
	return Options{
		MaxSchedules:    maxSchedules,
		PreemptionBound: 2,
		Timeout:         90 * time.Second,
	}
}

func exploreScenario(t *testing.T, sc Scenario, opts Options, wantSchedules int) Result {
	t.Helper()
	res, err := Explore(sc, opts)
	if err != nil {
		t.Fatalf("%s: %v", sc.Name, err)
	}
	t.Logf("%s: %d schedules (%d truncated, %d pruned, cap=%v)",
		sc.Name, res.Schedules, res.Truncated, res.Pruned, res.HitCap)
	if len(res.Failures) > 0 {
		t.Fatalf("%s: %d failing schedules:\n%s", sc.Name, len(res.Failures), failReport(res))
	}
	if res.Schedules < wantSchedules {
		t.Fatalf("%s: explored %d schedules, want >= %d", sc.Name, res.Schedules, wantSchedules)
	}
	return res
}

func TestExploreSeccomm(t *testing.T) {
	sc, err := SeccommScenario()
	if err != nil {
		t.Fatal(err)
	}
	exploreScenario(t, sc, boundedOpts(1200), 1000)
}

func TestExploreVideoPlayer(t *testing.T) {
	sc, err := VideoPlayerScenario()
	if err != nil {
		t.Fatal(err)
	}
	exploreScenario(t, sc, boundedOpts(1200), 1000)
}

func TestExploreRebindChurn(t *testing.T) {
	exploreScenario(t, RebindChurnScenario(), boundedOpts(1200), 1000)
}

func TestExploreQuarantineLadder(t *testing.T) {
	exploreScenario(t, QuarantineLadderScenario(), boundedOpts(1200), 1000)
}

// TestExploreAsyncPipeline model-checks speculative async chain merging:
// optimized ≡ generic on every schedule, and the explored schedules must
// include both coalesce-capturing and fallback-forcing interleavings
// (otherwise the equivalence proof would be vacuous for one branch).
func TestExploreAsyncPipeline(t *testing.T) {
	sc, cov := AsyncPipelineScenario()
	exploreScenario(t, sc, boundedOpts(1200), 1000)
	t.Logf("async-pipeline coverage: %d coalesced, %d fallbacks", cov.Coalesced, cov.Fallbacks)
	if cov.Coalesced == 0 {
		t.Error("no explored schedule captured a coalesced continuation")
	}
	if cov.Fallbacks == 0 {
		t.Error("no explored schedule forced a coalesce fallback")
	}
}

// TestExploreXDomainPipeline model-checks cross-domain continuation
// handoff: optimized ≡ generic on every schedule of a pipeline that
// ping-pongs between domains, and the explored schedules must include
// both handoff-capturing and enqueue-fallback interleavings (otherwise
// the equivalence proof would be vacuous for one branch).
func TestExploreXDomainPipeline(t *testing.T) {
	sc, cov := XDomainPipelineScenario()
	exploreScenario(t, sc, boundedOpts(1200), 1000)
	t.Logf("xdomain-pipeline coverage: %d handoffs, %d fallbacks", cov.Handoffs, cov.Fallbacks)
	if cov.Handoffs == 0 {
		t.Error("no explored schedule captured a cross-domain handoff")
	}
	if cov.Fallbacks == 0 {
		t.Error("no explored schedule forced a handoff fallback")
	}
}

// TestExploreFindsSeededBug is the harness sensitivity check: a
// deliberately stale super-handler body must produce failing schedules
// (raise after install) AND passing ones (raises drained first), and a
// reported failure must replay.
func TestExploreFindsSeededBug(t *testing.T) {
	sc := SeededBugScenario()
	res, err := Explore(sc, Options{MaxSchedules: 400, PreemptionBound: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("seeded-bug: %d schedules, %d failures", res.Schedules, len(res.Failures))
	if len(res.Failures) == 0 {
		t.Fatal("seeded ordering bug not detected by exploration")
	}
	if len(res.Failures) == res.Schedules {
		t.Fatal("every schedule failed: divergence is not order-sensitive")
	}
	f := res.Failures[0]
	if !strings.Contains(f.Reason, "diverge") {
		t.Errorf("failure reason %q does not mention divergence", f.Reason)
	}
	reason, err := ReplaySchedule(sc, f.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if reason == "" {
		t.Errorf("failing schedule %s passed on replay", FormatSchedule(f.Schedule))
	}
}

// TestExploreRandomWalk smoke-checks the randomized mode on the cheap
// scenarios; failures would carry the seed for replay.
func TestExploreRandomWalk(t *testing.T) {
	sc := QuarantineLadderScenario()
	res, err := RandomWalk(sc, Options{}, 42, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedules == 0 {
		t.Fatal("random walk completed no schedules")
	}
	if len(res.Failures) > 0 {
		t.Fatalf("random walk failures:\n%s", failReport(res))
	}
}

// TestOptimizedVariantsTakeFastPaths guards against the equivalence
// check silently comparing generic against generic: each optimized
// build, run straight through, must actually execute fast-path
// dispatches.
func TestOptimizedVariantsTakeFastPaths(t *testing.T) {
	seccomm, err := SeccommScenario()
	if err != nil {
		t.Fatal(err)
	}
	video, err := VideoPlayerScenario()
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []Scenario{seccomm, video, QuarantineLadderScenario()} {
		t.Run(sc.Name, func(t *testing.T) {
			inst, err := sc.Build(true, nil)
			if err != nil {
				t.Fatal(err)
			}
			inst.next = make([]int, len(inst.Threads))
			settle(&sc, inst)
			if fr := inst.Sys.StatsAggregate().FastRuns; fr == 0 {
				t.Errorf("%s: optimized build ran 0 fast-path dispatches", sc.Name)
			}
		})
	}
}

// TestExploreReplayDeterminism re-runs one explicit schedule twice and
// requires identical traces — the property the whole DFS rests on.
func TestExploreReplayDeterminism(t *testing.T) {
	sc := QuarantineLadderScenario()
	run := func() []trace.Entry {
		hook := trace.NewSchedRecorder()
		inst, err := sc.Build(true, hook)
		if err != nil {
			t.Fatal(err)
		}
		rec := trace.NewRecorder()
		rec.EnableHandlerProfiling()
		inst.Sys.SetTracer(rec)
		inst.next = make([]int, len(inst.Threads))
		settle(&sc, inst)
		return rec.Entries()
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("trace lengths differ or empty: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestFootprintIndependence pins the independence relation the sleep
// sets rely on.
func TestFootprintIndependence(t *testing.T) {
	if !independent(Dom(0), Dom(1)) {
		t.Error("disjoint domains not independent")
	}
	if independent(Dom(0), Dom(0, 1)) {
		t.Error("overlapping domains independent")
	}
	if independent(Footprint{Doms: 1, Reg: true}, Dom(1)) {
		t.Error("registry op independent of anything")
	}
	if independent(Footprint{}.orZero(), Dom(1)) {
		t.Error("zero footprint must be conservative")
	}
	var zeroHook event.SchedHook
	if zeroHook != nil {
		t.Error("nil hook sanity")
	}
}
