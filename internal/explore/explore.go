// Package explore is a DPOR-lite stateless model checker for the event
// runtime: it takes control of every scheduling decision of a
// multi-domain System — which thread issues its next operation, which
// domain pops its next activation, when the virtual clock advances to
// the next timer deadline — and enumerates interleavings of small
// seeded workloads. For every complete schedule it asserts that the
// optimized execution is indistinguishable from the generic one
// (per-domain event sequences, a stats projection, and the scenario's
// observable outcome), and that both executions satisfy the trace
// consistency rules (trace.Check) and the scheduling happens-before
// rules (trace.CheckSched).
//
// The state space is pruned two ways, both optional:
//
//   - Sleep sets over a conservative static independence relation:
//     operations whose declared footprints (domains touched, registry
//     use) are disjoint commute, so only one order is explored.
//   - Bounded preemption: a schedule may switch away from a runner that
//     is still enabled at most PreemptionBound times; within the budget
//     exploration is exhaustive, beyond it the previous runner
//     continues (the classic bounded-search fallback).
//
// Exploration is stateless: backtracking re-executes the schedule
// prefix on a fresh instance, so scenarios must build deterministically
// (fixed seeds, virtual clocks).
package explore

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"time"

	"eventopt/internal/event"
	"eventopt/internal/trace"
)

// ChoiceKind discriminates scheduling choices.
type ChoiceKind uint8

const (
	// OpChoice runs the next operation of thread Idx.
	OpChoice ChoiceKind = iota
	// StepChoice runs one activation of domain Idx.
	StepChoice
	// ClockChoice advances the virtual clock to the next timer deadline.
	// It is enabled only when no domain has runnable work.
	ClockChoice
)

// Choice is one scheduling decision.
type Choice struct {
	Kind ChoiceKind
	Idx  int
}

func (c Choice) String() string {
	switch c.Kind {
	case OpChoice:
		return fmt.Sprintf("op:%d", c.Idx)
	case StepChoice:
		return fmt.Sprintf("step:%d", c.Idx)
	case ClockChoice:
		return "clock"
	default:
		return fmt.Sprintf("Choice(%d,%d)", c.Kind, c.Idx)
	}
}

// FormatSchedule renders a schedule compactly for failure reports.
func FormatSchedule(s []Choice) string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ")
}

// Footprint is the static may-touch set of an operation, used for the
// independence relation: two choices are independent when neither
// touches the registry and their domain masks are disjoint. The zero
// value means "touches everything" (always dependent) — the safe
// default for operations that were not annotated.
type Footprint struct {
	Doms uint64 // bitmask of event domains the operation may touch
	Reg  bool   // may mutate the registry (bind/unbind/install/remove)
}

// TouchAll is the maximally conservative footprint.
var TouchAll = Footprint{Doms: ^uint64(0), Reg: true}

// Dom returns a footprint touching exactly the given domains.
func Dom(doms ...int) Footprint {
	var f Footprint
	for _, d := range doms {
		f.Doms |= 1 << uint(d)
	}
	return f
}

func (f Footprint) orZero() Footprint {
	if f.Doms == 0 && !f.Reg {
		return TouchAll
	}
	return f
}

func independent(a, b Footprint) bool {
	if a.Reg || b.Reg {
		return false
	}
	return a.Doms&b.Doms == 0
}

// Op is one schedulable operation of a scenario thread.
type Op struct {
	Name string
	Run  func(*Instance)
	// FP declares what the operation may touch; the zero value is
	// conservative (dependent with everything).
	FP Footprint
}

// Thread is an ordered operation sequence; the explorer interleaves
// threads at operation granularity.
type Thread struct {
	Name string
	Ops  []Op
}

// Instance is one built copy of a scenario, optimized or generic.
type Instance struct {
	Sys     *event.System
	Clock   *event.VirtualClock
	Threads []Thread
	// Observe returns the application-visible outcome (delivered
	// payloads, dead-letter sets, app counters); compared with
	// reflect.DeepEqual across the optimized and generic runs.
	Observe func() any

	next []int // per-thread program counter
}

// Scenario describes one explorable workload.
type Scenario struct {
	Name string
	// Build constructs a fresh deterministic instance. optimized selects
	// the variant; hook, when non-nil, must be installed on the System
	// (event.WithSchedHook) so the explorer can validate the scheduling
	// log. Build runs once per explored schedule — keep it fast and
	// cache anything expensive (profiles) across calls.
	Build func(optimized bool, hook event.SchedHook) (*Instance, error)
	// Horizon bounds virtual time: the clock never advances past it, so
	// scenarios with self-rearming timers terminate. 0 means run all
	// timers to quiescence.
	Horizon event.Duration
	// StepFP returns the footprint of one scheduler step of a domain.
	// nil means conservative (every step dependent with everything).
	StepFP func(dom int) Footprint
	// CompareStats projects a stats snapshot to the fields that must
	// match between optimized and generic runs. nil selects the default
	// projection: activation counts, retries, dead-letters and queue
	// drops (dispatch-route and fault-bookkeeping counters necessarily
	// differ between the two variants).
	CompareStats func(event.StatsSnapshot) any
	// SkipSchedCheck disables the trace.CheckSched validation — only
	// for scenarios that deliberately violate the install rules (the
	// seeded-bug sensitivity test).
	SkipSchedCheck bool
}

// Options bounds an exploration.
type Options struct {
	// MaxSchedules caps complete schedules (default 2000).
	MaxSchedules int
	// MaxSteps caps choices per schedule (default 2000); schedules cut
	// by the cap count as Truncated and skip the equivalence check.
	MaxSteps int
	// PreemptionBound caps switches away from a still-enabled runner
	// per schedule; negative means unbounded (the default).
	PreemptionBound int
	// Timeout caps wall-clock time; 0 means none.
	Timeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxSchedules <= 0 {
		o.MaxSchedules = 2000
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 2000
	}
	return o
}

// Failure is one schedule on which optimized and generic executions
// diverged (or a consistency rule failed).
type Failure struct {
	Schedule []Choice
	Seed     int64 // random-walk seed that produced it (0 for DFS)
	Reason   string
}

func (f Failure) String() string {
	return fmt.Sprintf("%s\n  schedule: %s", f.Reason, FormatSchedule(f.Schedule))
}

// Result summarizes one exploration.
type Result struct {
	Scenario  string
	Schedules int // complete schedules explored and checked
	Truncated int // schedules cut by MaxSteps (unchecked)
	Pruned    int // alternatives skipped by sleep sets
	HitCap    bool
	Failures  []Failure
}

// sleeper is one sleep-set member with the footprint it had when added.
type sleeper struct {
	c  Choice
	fp Footprint
}

// decision records one scheduling decision point of an executed run.
type decision struct {
	choice  Choice
	enabled []Choice
	fps     []Footprint
	sleep   []sleeper // sleep set at this state (branch suffix only)
	preempt int       // preemptions spent before this decision
	prev    Choice    // previous runner (thread/domain); Idx<0 when none
}

// pending is one unexplored DFS branch: a schedule prefix plus the
// sleep set of the state the prefix leads to.
type pending struct {
	prefix []Choice
	sleep  []sleeper
}

type runOutcome uint8

const (
	runCompleted runOutcome = iota
	runTruncated
	runSleepBlocked
)

// runData is the full record of one executed optimized run.
type runData struct {
	outcome   runOutcome
	decisions []decision
	inst      *Instance
	rec       *trace.Recorder
	sched     *trace.SchedRecorder
}

func (r *runData) schedule() []Choice {
	out := make([]Choice, len(r.decisions))
	for i, d := range r.decisions {
		out[i] = d.choice
	}
	return out
}

// enabled computes the enabled choices of the current state.
func (sc *Scenario) enabled(inst *Instance) ([]Choice, []Footprint) {
	var cs []Choice
	var fps []Footprint
	for t := range inst.Threads {
		if inst.next[t] < len(inst.Threads[t].Ops) {
			cs = append(cs, Choice{OpChoice, t})
			fps = append(fps, inst.Threads[t].Ops[inst.next[t]].FP.orZero())
		}
	}
	anyRunnable := false
	for d := 0; d < inst.Sys.NumDomains(); d++ {
		if inst.Sys.DomainRunnable(d) {
			anyRunnable = true
			cs = append(cs, Choice{StepChoice, d})
			if sc.StepFP != nil {
				fps = append(fps, sc.StepFP(d).orZero())
			} else {
				fps = append(fps, TouchAll)
			}
		}
	}
	if !anyRunnable {
		if at, ok := inst.Sys.NextDeadline(); ok && (sc.Horizon == 0 || at <= sc.Horizon) {
			cs = append(cs, Choice{ClockChoice, 0})
			fps = append(fps, TouchAll)
		}
	}
	return cs, fps
}

// execute applies one choice to the instance.
func execute(inst *Instance, c Choice) {
	switch c.Kind {
	case OpChoice:
		op := inst.Threads[c.Idx].Ops[inst.next[c.Idx]]
		inst.next[c.Idx]++
		op.Run(inst)
	case StepChoice:
		inst.Sys.StepDomain(c.Idx)
	case ClockChoice:
		if at, ok := inst.Sys.NextDeadline(); ok {
			if delta := at - inst.Clock.Now(); delta > 0 {
				inst.Clock.Advance(delta)
			}
		}
	}
}

func indexOf(cs []Choice, c Choice) int {
	for i, x := range cs {
		if x == c {
			return i
		}
	}
	return -1
}

func inSleep(sleep []sleeper, c Choice) bool {
	for _, s := range sleep {
		if s.c == c {
			return true
		}
	}
	return false
}

// wakeFiltered returns the sleep members independent of the executed
// choice (dependent members "wake up" and leave the set).
func wakeFiltered(sleep []sleeper, fp Footprint) []sleeper {
	var out []sleeper
	for _, s := range sleep {
		if independent(s.fp, fp) {
			out = append(out, s)
		}
	}
	return out
}

// isRunner reports whether the choice names a schedulable runner
// (thread or domain) for preemption accounting.
func isRunner(c Choice) bool { return c.Kind == OpChoice || c.Kind == StepChoice }

// isPreemption reports whether picking next at a state counts against
// the preemption budget: the previous runner is still enabled but a
// different runner is chosen. Clock advances never count.
func isPreemption(prev Choice, enabled []Choice, next Choice) bool {
	if prev.Idx < 0 || !isRunner(next) || next == prev {
		return false
	}
	return indexOf(enabled, prev) >= 0
}

// chooser picks the next choice at a free (post-prefix) decision.
// Returning ok=false aborts the run as sleep-blocked.
type chooser func(enabled []Choice, fps []Footprint, sleep []sleeper, prev Choice, preempt int) (Choice, bool)

// dfsChooser is the default continuation policy: keep the previous
// runner when allowed (it spends no preemption budget), otherwise the
// first enabled choice outside the sleep set that respects the bound.
func dfsChooser(bound int) chooser {
	return func(enabled []Choice, fps []Footprint, sleep []sleeper, prev Choice, preempt int) (Choice, bool) {
		if prev.Idx >= 0 && indexOf(enabled, prev) >= 0 && !inSleep(sleep, prev) {
			return prev, true
		}
		for _, c := range enabled {
			if inSleep(sleep, c) {
				continue
			}
			if bound >= 0 && isPreemption(prev, enabled, c) && preempt >= bound {
				continue
			}
			return c, true
		}
		// Everything enabled is asleep (redundant branch) or over budget:
		// fall back to any enabled choice over budget rather than wedge —
		// but if all are asleep, the branch is redundant and aborts.
		for _, c := range enabled {
			if !inSleep(sleep, c) {
				return c, true
			}
		}
		return Choice{}, false
	}
}

// runOne builds a fresh optimized instance, replays the pending prefix
// exactly, then continues with pick until the schedule completes (no
// enabled choices), truncates (MaxSteps) or sleep-blocks.
func runOne(sc *Scenario, p pending, opts Options, pick chooser) (*runData, error) {
	sched := trace.NewSchedRecorder()
	inst, err := sc.Build(true, sched)
	if err != nil {
		return nil, fmt.Errorf("explore: %s: build optimized: %w", sc.Name, err)
	}
	rec := trace.NewRecorder()
	rec.EnableHandlerProfiling()
	inst.Sys.SetTracer(rec)
	inst.next = make([]int, len(inst.Threads))

	rd := &runData{inst: inst, rec: rec, sched: sched}
	prev := Choice{Idx: -1}
	preempt := 0
	sleep := p.sleep

	for step := 0; ; step++ {
		enabled, fps := sc.enabled(inst)
		if len(enabled) == 0 {
			rd.outcome = runCompleted
			return rd, nil
		}
		if step >= opts.MaxSteps {
			rd.outcome = runTruncated
			return rd, nil
		}
		var c Choice
		inPrefix := step < len(p.prefix)
		if inPrefix {
			c = p.prefix[step]
			if indexOf(enabled, c) < 0 {
				return nil, fmt.Errorf("explore: %s: replay divergence at step %d: %v not enabled in %v (scenario not deterministic?)",
					sc.Name, step, c, enabled)
			}
		} else {
			var ok bool
			c, ok = pick(enabled, fps, sleep, prev, preempt)
			if !ok {
				rd.outcome = runSleepBlocked
				return rd, nil
			}
		}
		d := decision{choice: c, enabled: enabled, fps: fps, preempt: preempt, prev: prev}
		if !inPrefix {
			d.sleep = sleep
		}
		rd.decisions = append(rd.decisions, d)

		if isPreemption(prev, enabled, c) {
			preempt++
		}
		if isRunner(c) {
			prev = c
		}
		cfp := d.fps[indexOf(enabled, c)]
		if inPrefix {
			// The prefix's final sleep set was computed when the branch was
			// pushed; nothing to track until the free suffix starts.
			if step == len(p.prefix)-1 {
				sleep = p.sleep
			}
		} else {
			sleep = wakeFiltered(sleep, cfp)
		}
		execute(inst, c)
	}
}

// settle runs an instance to quiescence within the scenario horizon.
func settle(sc *Scenario, inst *Instance) {
	// Run any unconsumed thread operations first (tolerant-replay path).
	for t := range inst.Threads {
		for inst.next[t] < len(inst.Threads[t].Ops) {
			op := inst.Threads[t].Ops[inst.next[t]]
			inst.next[t]++
			op.Run(inst)
		}
	}
	if sc.Horizon > 0 {
		inst.Sys.DrainFor(sc.Horizon)
		return
	}
	inst.Sys.Drain()
}

// replayGeneric executes the recorded schedule on a fresh generic
// instance, tolerantly: a choice that is not enabled there (a retry
// timer that never armed, a step of an already-idle domain) is skipped.
// The instance is then settled to quiescence.
func replayGeneric(sc *Scenario, schedule []Choice) (*Instance, *trace.Recorder, error) {
	inst, err := sc.Build(false, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("explore: %s: build generic: %w", sc.Name, err)
	}
	rec := trace.NewRecorder()
	rec.EnableHandlerProfiling()
	inst.Sys.SetTracer(rec)
	inst.next = make([]int, len(inst.Threads))
	for _, c := range schedule {
		switch c.Kind {
		case OpChoice:
			if c.Idx < len(inst.Threads) && inst.next[c.Idx] < len(inst.Threads[c.Idx].Ops) {
				execute(inst, c)
			}
		case StepChoice:
			if inst.Sys.DomainRunnable(c.Idx) {
				execute(inst, c)
			}
		case ClockChoice:
			if at, ok := inst.Sys.NextDeadline(); ok && (sc.Horizon == 0 || at <= sc.Horizon) {
				if delta := at - inst.Clock.Now(); delta > 0 {
					inst.Clock.Advance(delta)
				}
			}
		}
	}
	settle(sc, inst)
	return inst, rec, nil
}

// eventSeq projects the per-domain EventRaised sequences out of a trace.
// Handler entries are excluded deliberately: fused super-handler bodies
// and deopt replays change which handler names appear, but the event
// activation sequence each domain executes must be identical.
func eventSeq(entries []trace.Entry) map[int][]trace.Entry {
	out := make(map[int][]trace.Entry)
	for _, e := range entries {
		if e.Kind != trace.EventRaised {
			continue
		}
		out[e.Domain] = append(out[e.Domain], trace.Entry{
			Kind: e.Kind, Event: e.Event, EventName: e.EventName,
			Mode: e.Mode, Depth: e.Depth, Domain: e.Domain,
		})
	}
	return out
}

// defaultStatsProj is the lax stats projection: counters whose values
// the two dispatch routes must agree on. Route counters (Generic,
// FastRuns, HandlersRun) and fault bookkeeping that the deopt-replay
// path accounts differently (PanicsRecovered, Quarantines) are
// excluded by design.
func defaultStatsProj(s event.StatsSnapshot) any {
	return struct {
		Raises, Sync, Async, Timed       int64
		Retries, DeadLetters, QueueDrops int64
	}{s.Raises, s.SyncRaises, s.AsyncRaises, s.TimedRaises,
		s.Retries, s.DeadLetters, s.QueueDrops}
}

// checkEquivalence runs the generic twin of a completed optimized run
// and compares the two; it returns a failure description or "".
func checkEquivalence(sc *Scenario, rd *runData) (string, error) {
	if vs := trace.Check(rd.rec.Entries()); len(vs) > 0 {
		return fmt.Sprintf("optimized trace inconsistent: %v", vs[0]), nil
	}
	if !sc.SkipSchedCheck {
		if vs := trace.CheckSched(rd.sched.Events()); len(vs) > 0 {
			return fmt.Sprintf("scheduling log inconsistent: %v", vs[0]), nil
		}
	}
	schedule := rd.schedule()
	gen, genRec, err := replayGeneric(sc, schedule)
	if err != nil {
		return "", err
	}
	if vs := trace.Check(genRec.Entries()); len(vs) > 0 {
		return fmt.Sprintf("generic trace inconsistent: %v", vs[0]), nil
	}

	optSeq := eventSeq(rd.rec.Entries())
	genSeq := eventSeq(genRec.Entries())
	for dom, os := range optSeq {
		gs := genSeq[dom]
		if !reflect.DeepEqual(os, gs) {
			return fmt.Sprintf("domain %d event sequences diverge: optimized %s vs generic %s",
				dom, describeSeq(os), describeSeq(gs)), nil
		}
	}
	for dom, gs := range genSeq {
		if _, ok := optSeq[dom]; !ok && len(gs) > 0 {
			return fmt.Sprintf("domain %d raised events only generically: %s", dom, describeSeq(gs)), nil
		}
	}

	proj := sc.CompareStats
	if proj == nil {
		proj = defaultStatsProj
	}
	optStats := proj(rd.inst.Sys.StatsAggregate())
	genStats := proj(gen.Sys.StatsAggregate())
	if !reflect.DeepEqual(optStats, genStats) {
		return fmt.Sprintf("stats diverge: optimized %+v vs generic %+v", optStats, genStats), nil
	}

	if rd.inst.Observe != nil && gen.Observe != nil {
		oo, og := rd.inst.Observe(), gen.Observe()
		if !reflect.DeepEqual(oo, og) {
			return fmt.Sprintf("observations diverge: optimized %+v vs generic %+v", oo, og), nil
		}
	}
	return "", nil
}

func describeSeq(es []trace.Entry) string {
	if len(es) == 0 {
		return "(empty)"
	}
	parts := make([]string, 0, len(es))
	for i, e := range es {
		if i >= 12 {
			parts = append(parts, fmt.Sprintf("…+%d", len(es)-i))
			break
		}
		parts = append(parts, fmt.Sprintf("%s@%d", e.EventName, e.Depth))
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Explore enumerates schedules of the scenario depth-first and checks
// optimized ≡ generic on every complete one.
func Explore(sc Scenario, opts Options) (Result, error) {
	opts = opts.withDefaults()
	res := Result{Scenario: sc.Name}
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	pick := dfsChooser(opts.PreemptionBound)
	stack := []pending{{}}

	for len(stack) > 0 {
		if res.Schedules >= opts.MaxSchedules {
			res.HitCap = true
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.HitCap = true
			break
		}
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		rd, err := runOne(&sc, p, opts, pick)
		if err != nil {
			return res, err
		}
		if rd.outcome == runSleepBlocked {
			res.Pruned++
			continue
		}
		if rd.outcome == runTruncated {
			res.Truncated++
		} else {
			res.Schedules++
			reason, err := checkEquivalence(&sc, rd)
			if err != nil {
				return res, err
			}
			if reason != "" {
				res.Failures = append(res.Failures, Failure{Schedule: rd.schedule(), Reason: reason})
			}
		}

		// Branch: push every admissible alternative of every free
		// decision of the executed suffix, deepest last so the DFS stays
		// depth-first (LIFO stack).
		schedule := rd.schedule()
		for i := len(p.prefix); i < len(rd.decisions); i++ {
			d := rd.decisions[i]
			ci := indexOf(d.enabled, d.choice)
			priors := []sleeper{{d.choice, d.fps[ci]}}
			for j, a := range d.enabled {
				if a == d.choice {
					continue
				}
				if inSleep(d.sleep, a) {
					res.Pruned++
					continue
				}
				if opts.PreemptionBound >= 0 && isPreemption(d.prev, d.enabled, a) && d.preempt >= opts.PreemptionBound {
					continue
				}
				childSleep := wakeFiltered(append(append([]sleeper{}, d.sleep...), priors...), d.fps[j])
				prefix := make([]Choice, i+1)
				copy(prefix, schedule[:i])
				prefix[i] = a
				stack = append(stack, pending{prefix: prefix, sleep: childSleep})
				priors = append(priors, sleeper{a, d.fps[j]})
			}
		}
	}
	return res, nil
}

// RandomWalk samples n schedules uniformly at random from the seeded
// source and checks optimized ≡ generic on each; failures carry the
// seed so they replay exactly (run RandomWalk again with the same seed,
// or ReplaySchedule with the reported schedule).
func RandomWalk(sc Scenario, opts Options, seed int64, n int) (Result, error) {
	opts = opts.withDefaults()
	res := Result{Scenario: sc.Name}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		pick := func(enabled []Choice, fps []Footprint, sleep []sleeper, prev Choice, preempt int) (Choice, bool) {
			return enabled[rng.Intn(len(enabled))], true
		}
		rd, err := runOne(&sc, pending{}, opts, pick)
		if err != nil {
			return res, err
		}
		if rd.outcome == runTruncated {
			res.Truncated++
			continue
		}
		res.Schedules++
		reason, err := checkEquivalence(&sc, rd)
		if err != nil {
			return res, err
		}
		if reason != "" {
			res.Failures = append(res.Failures, Failure{Schedule: rd.schedule(), Seed: seed, Reason: reason})
		}
	}
	return res, nil
}

// ReplaySchedule re-executes one recorded schedule (from a Failure) and
// returns the failure reason, or "" if the run now passes.
func ReplaySchedule(sc Scenario, schedule []Choice) (string, error) {
	opts := Options{}.withDefaults()
	rd, err := runOne(&sc, pending{prefix: schedule}, opts, dfsChooser(-1))
	if err != nil {
		return "", err
	}
	if rd.outcome != runCompleted {
		return fmt.Sprintf("replay did not complete (outcome %d)", rd.outcome), nil
	}
	return checkEquivalence(&sc, rd)
}
