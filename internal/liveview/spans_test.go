package liveview

import (
	"net/http/httptest"
	"strings"
	"testing"

	"eventopt/internal/event"
	"eventopt/internal/span"
	"eventopt/internal/telemetry"
	"eventopt/internal/telemetry/httpdebug"
)

// TestSpanPaneRoundTrip drives a span-traced system, serves /spans
// through the real httpdebug handler and renders the evtop pane from
// the fetched document: wire format and pane stay in agreement.
func TestSpanPaneRoundTrip(t *testing.T) {
	s := event.New(
		event.WithTelemetry(telemetry.Config{}),
		event.WithSpanTracing(span.Config{SampleEvery: 1, RetainEvery: 1}),
	)
	a := s.Define("ingress.request")
	b := s.Define("backend.call")
	s.Bind(a, "ha", func(ctx *event.Ctx) { ctx.Raise(b) })
	s.Bind(b, "hb", func(ctx *event.Ctx) {})
	for i := 0; i < 8; i++ {
		if err := s.Raise(a); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(httpdebug.New(s, nil))
	defer srv.Close()

	doc, err := FetchSpans(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !doc.Enabled || doc.Stats.RootsSampled == 0 {
		t.Fatalf("fetched spans doc = %+v", doc)
	}
	if len(doc.Traces) == 0 {
		t.Fatalf("no retained traces (RetainEvery=1): %+v", doc.Stats)
	}

	var b2 strings.Builder
	if err := RenderSpans(&b2, doc, 2); err != nil {
		t.Fatal(err)
	}
	out := b2.String()
	for _, want := range []string{"spans: 1/1 sampled", "trace ", "ingress.request", "backend.call", "root", "sync"} {
		if !strings.Contains(out, want) {
			t.Fatalf("span pane lacks %q:\n%s", want, out)
		}
	}
	// The nested child renders indented under its root.
	rootLine := strings.Index(out, "ingress.request")
	childLine := strings.Index(out, "backend.call")
	if rootLine < 0 || childLine < rootLine {
		t.Fatalf("child not rendered after root:\n%s", out)
	}

	var off strings.Builder
	if err := RenderSpans(&off, nil, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(off.String(), "spans: off") {
		t.Fatalf("nil doc pane = %q", off.String())
	}
}

// TestRenderTruncatesLongNames pins the column-jitter fix: an event
// name longer than the name column is truncated with an ellipsis so the
// numeric columns of every row start at the same offset.
func TestRenderTruncatesLongNames(t *testing.T) {
	long := "an.extremely.long.event.name.that.overflows"
	doc := &EventsDoc{
		TimeSampleEvery: 1,
		Events: []telemetry.EventSnapshot{
			{Event: 0, Name: long, Domain: 0, Latency: histWith(100)},
			{Event: 1, Name: "short", Domain: 0, Latency: histWith(100)},
		},
	}
	var b strings.Builder
	if err := Render(&b, doc, SortCount, false); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), b.String())
	}
	if strings.Contains(b.String(), long) {
		t.Fatalf("long name not truncated:\n%s", b.String())
	}
	// The name field is exactly nameWidth runes in every row, so the
	// separator before the DOM column sits at the same offset — that is
	// the jitter-free property the truncation buys.
	for _, ln := range lines {
		r := []rune(ln)
		if len(r) <= nameWidth || r[nameWidth] != ' ' {
			t.Fatalf("name field overflowed its column in %q:\n%s", ln, b.String())
		}
	}
	if fit("abc", 3) != "abc" || fit("abcd", 3) != "ab…" || fit("x", 0) != "" {
		t.Fatalf("fit misbehaves: %q %q %q", fit("abc", 3), fit("abcd", 3), fit("x", 0))
	}
}

func histWith(ns int64) telemetry.HistSnapshot {
	var h telemetry.Histogram
	h.Record(ns)
	return h.Snapshot()
}
