package liveview

import (
	"net/http/httptest"
	"strings"
	"testing"

	"eventopt/internal/event"
	"eventopt/internal/telemetry"
	"eventopt/internal/telemetry/httpdebug"
)

// TestDispatchPaneRoundTrip drives real traffic through a two-domain
// system with a merged cross-domain pipeline, serves /metrics through
// the real httpdebug handler and renders the dispatch pane from it: the
// coalesce and handoff counters must survive the wire round trip.
func TestDispatchPaneRoundTrip(t *testing.T) {
	s := event.New(event.WithDomains(2), event.WithTelemetry(telemetry.Config{}))
	head := s.Define("head") // domain 0
	tail := s.Define("tail") // domain 1
	headFn := func(ctx *event.Ctx) { ctx.RaiseAsync(tail) }
	tailFn := func(*event.Ctx) {}
	s.Bind(head, "hh", headFn)
	s.Bind(tail, "ht", tailFn)
	sh := &event.SuperHandler{
		Entry: head,
		Segments: []event.Segment{
			{Event: head, EventName: "head", Version: s.Version(head),
				Steps: []event.Step{{Event: head, EventName: "head", Handler: "hh", Fn: headFn}}},
			{Event: tail, EventName: "tail", Version: s.Version(tail), AsyncEntry: true,
				Steps: []event.Step{{Event: tail, EventName: "tail", Handler: "ht", Fn: tailFn}}},
		},
	}
	if err := s.InstallFastPath(sh); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Raise(head); err != nil {
			t.Fatal(err)
		}
		s.Drain()
	}
	srv := httptest.NewServer(httpdebug.New(s, nil))
	defer srv.Close()

	doc, err := FetchMetrics(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Domains != 2 || len(doc.DomainStats) != 2 {
		t.Fatalf("metrics doc = %+v", doc)
	}
	if doc.Stats.XDomainHandoffs != 3 || doc.Stats.FastRuns != 6 {
		t.Fatalf("counters lost in transit: %+v", doc.Stats)
	}

	var b strings.Builder
	if err := RenderDispatch(&b, doc); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"6 fast", "coalesce: 0 captured", "x-domain: 3 handoffs", "HANDOFF",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("pane lacks %q:\n%s", want, out)
		}
	}
}

// TestOptimizerPaneRoundTrip serves a published optimizer snapshot
// through the real httpdebug handler and renders the evtop pane from it:
// the wire format and the pane must stay in agreement.
func TestOptimizerPaneRoundTrip(t *testing.T) {
	s := event.New(event.WithTelemetry(telemetry.Config{}))
	s.Telemetry().PublishOptimizer(&telemetry.OptimizerSnapshot{
		Enabled: true, Running: true, Tick: 12, IntervalMs: 200,
		PromoteThreshold: 64, DemoteThreshold: 16,
		Promotions: 3, Demotions: 1, Deopts: 1,
		Installed: []telemetry.OptimizerPlan{{
			Entry: 0, EntryName: "req", Chain: []string{"req", "resp"},
			Handlers: 3, Score: 80, GainNs: 2000, Replans: 1,
		}},
	})
	srv := httptest.NewServer(httpdebug.New(s, nil))
	defer srv.Close()

	snap, err := FetchOptimizer(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Enabled || snap.Tick != 12 || len(snap.Installed) != 1 {
		t.Fatalf("fetched snapshot = %+v", snap)
	}

	var b strings.Builder
	if err := RenderOptimizer(&b, snap); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"optimizer: on", "tick=12", "promote=3", "deopt=1", "req>resp"} {
		if !strings.Contains(out, want) {
			t.Fatalf("pane lacks %q:\n%s", want, out)
		}
	}

	// Disabled snapshot renders the off line, not a panic.
	var off strings.Builder
	if err := RenderOptimizer(&off, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(off.String(), "optimizer: off") {
		t.Fatalf("nil snapshot pane = %q", off.String())
	}
}
