package liveview

import (
	"net/http/httptest"
	"strings"
	"testing"

	"eventopt/internal/event"
	"eventopt/internal/telemetry"
	"eventopt/internal/telemetry/httpdebug"
)

// TestOptimizerPaneRoundTrip serves a published optimizer snapshot
// through the real httpdebug handler and renders the evtop pane from it:
// the wire format and the pane must stay in agreement.
func TestOptimizerPaneRoundTrip(t *testing.T) {
	s := event.New(event.WithTelemetry(telemetry.Config{}))
	s.Telemetry().PublishOptimizer(&telemetry.OptimizerSnapshot{
		Enabled: true, Running: true, Tick: 12, IntervalMs: 200,
		PromoteThreshold: 64, DemoteThreshold: 16,
		Promotions: 3, Demotions: 1, Deopts: 1,
		Installed: []telemetry.OptimizerPlan{{
			Entry: 0, EntryName: "req", Chain: []string{"req", "resp"},
			Handlers: 3, Score: 80, GainNs: 2000, Replans: 1,
		}},
	})
	srv := httptest.NewServer(httpdebug.New(s, nil))
	defer srv.Close()

	snap, err := FetchOptimizer(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Enabled || snap.Tick != 12 || len(snap.Installed) != 1 {
		t.Fatalf("fetched snapshot = %+v", snap)
	}

	var b strings.Builder
	if err := RenderOptimizer(&b, snap); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"optimizer: on", "tick=12", "promote=3", "deopt=1", "req>resp"} {
		if !strings.Contains(out, want) {
			t.Fatalf("pane lacks %q:\n%s", want, out)
		}
	}

	// Disabled snapshot renders the off line, not a panic.
	var off strings.Builder
	if err := RenderOptimizer(&off, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(off.String(), "optimizer: off") {
		t.Fatalf("nil snapshot pane = %q", off.String())
	}
}
