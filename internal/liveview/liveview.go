// Package liveview is the shared client side of the live telemetry
// endpoint: it fetches the /events document served by telemetry/httpdebug
// and renders the per-event table that evtop displays and evprof -live
// prints. Keeping it in one package guarantees the two tools agree on
// the wire format and the column semantics.
package liveview

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"eventopt/internal/telemetry"
)

// EventsDoc mirrors httpdebug's /events response.
type EventsDoc struct {
	TimeSampleEvery int                       `json:"time_sample_every"`
	Events          []telemetry.EventSnapshot `json:"events"`
	Merged          []telemetry.EventSnapshot `json:"merged"`
}

// Fetch retrieves the /events document from a telemetry HTTP endpoint.
// base is the server root (e.g. "http://localhost:6060"); a path is kept
// as given so a full ".../events" URL also works.
func Fetch(base string) (*EventsDoc, error) {
	url := base
	if !strings.HasSuffix(url, "/events") {
		url = strings.TrimRight(url, "/") + "/events"
	}
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var doc EventsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%s: decoding: %w", url, err)
	}
	return &doc, nil
}

// Sort keys accepted by Render.
const (
	SortCount  = "count"
	SortMean   = "mean"
	SortP99    = "p99"
	SortMax    = "max"
	SortFaults = "faults"
)

// nameWidth is the fixed width of the event-name column. Names longer
// than this are truncated by fit, so one long event name cannot shift
// every other column of the frame (the jitter made evtop unreadable
// between redraws).
const nameWidth = 20

// fit truncates s to at most w terminal cells, marking the cut with an
// ellipsis. Truncation is rune-aware so a multi-byte name cannot be
// split mid-rune.
func fit(s string, w int) string {
	r := []rune(s)
	if len(r) <= w {
		return s
	}
	if w < 1 {
		return ""
	}
	return string(r[:w-1]) + "…"
}

// Render writes the top-style per-event table. merged selects the
// cross-domain rows (one per event) instead of per-domain cells. Counts
// are scaled by the server's timed-path sampling period, so they
// estimate true activation counts.
func Render(w io.Writer, doc *EventsDoc, sortKey string, merged bool) error {
	rows := doc.Events
	if merged {
		rows = doc.Merged
	}
	rows = append([]telemetry.EventSnapshot(nil), rows...)
	key := func(r telemetry.EventSnapshot) float64 {
		switch sortKey {
		case SortMean:
			return r.Latency.Mean()
		case SortP99:
			return float64(r.Latency.Quantile(0.99))
		case SortMax:
			return float64(r.Latency.Max)
		case SortFaults:
			return float64(r.Faults)
		default:
			return float64(r.Latency.Count)
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return key(rows[i]) > key(rows[j]) })

	scale := int64(doc.TimeSampleEvery)
	if scale < 1 {
		scale = 1
	}
	fmt.Fprintf(w, "%-*s %4s %10s %9s %9s %9s %9s %9s %7s\n",
		nameWidth, "EVENT", "DOM", "COUNT", "MEAN", "P50", "P99", "MAX", "QDELAY99", "FAULTS")
	for _, r := range rows {
		dom := fmt.Sprintf("%d", r.Domain)
		if r.Domain < 0 {
			dom = "*"
		}
		name := r.Name
		if name == "" {
			name = fmt.Sprintf("#%d", r.Event)
		}
		qd := "-"
		if r.QueueDelay.Count > 0 {
			qd = us(float64(r.QueueDelay.Quantile(0.99)))
		}
		// Fault counts are exact (every fault is recorded), so they are
		// not scaled by the sampling period like the latency counts.
		fmt.Fprintf(w, "%-*s %4s %10d %9s %9s %9s %9s %9s %7d\n",
			nameWidth, fit(name, nameWidth), dom,
			r.Latency.Count*scale,
			us(r.Latency.Mean()),
			us(float64(r.Latency.Quantile(0.50))),
			us(float64(r.Latency.Quantile(0.99))),
			us(float64(r.Latency.Max)),
			qd, r.Faults)
	}
	if len(rows) == 0 {
		fmt.Fprintln(w, "(no telemetry recorded yet)")
	}
	return nil
}

// us renders nanoseconds as microseconds with two decimals.
func us(ns float64) string {
	return fmt.Sprintf("%.2fus", ns/1e3)
}

// DispatchStats mirrors the dispatch-route counters of the /metrics
// document's stats block (event.StatsSnapshot's JSON shape, kept
// structural so the view layer does not depend on the runtime package).
type DispatchStats struct {
	Raises            int64 `json:"Raises"`
	FastRuns          int64 `json:"FastRuns"`
	Generic           int64 `json:"Generic"`
	Fallbacks         int64 `json:"Fallbacks"`
	SegFallbacks      int64 `json:"SegFallbacks"`
	Coalesced         int64 `json:"Coalesced"`
	CoalesceFallbacks int64 `json:"CoalesceFallbacks"`
	XDomainHandoffs   int64 `json:"XDomainHandoffs"`
	XDomainFallbacks  int64 `json:"XDomainFallbacks"`
}

// MetricsDoc mirrors the parts of httpdebug's /metrics response the
// dispatch pane renders.
type MetricsDoc struct {
	Domains     int             `json:"domains"`
	Stats       DispatchStats   `json:"stats"`
	DomainStats []DispatchStats `json:"domain_stats"`
}

// FetchMetrics retrieves the /metrics document (aggregate and
// per-domain dispatch counters).
func FetchMetrics(base string) (*MetricsDoc, error) {
	url := base
	if !strings.HasSuffix(url, "/metrics") {
		url = strings.TrimRight(url, "/") + "/metrics"
	}
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var doc MetricsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%s: decoding: %w", url, err)
	}
	return &doc, nil
}

// RenderDispatch writes the dispatch-route pane: how activations split
// between the fast and generic paths, how speculative coalescing and
// cross-domain handoff fared, with a per-domain breakdown when the
// system runs more than one domain.
func RenderDispatch(w io.Writer, doc *MetricsDoc) error {
	s := doc.Stats
	fmt.Fprintf(w, "dispatch: %d raises — %d fast, %d generic, %d guard fallbacks (%d stale segments)\n",
		s.Raises, s.FastRuns, s.Generic, s.Fallbacks, s.SegFallbacks)
	fmt.Fprintf(w, "  coalesce: %d captured, %d demoted to enqueue\n",
		s.Coalesced, s.CoalesceFallbacks)
	fmt.Fprintf(w, "  x-domain: %d handoffs, %d enqueue fallbacks\n",
		s.XDomainHandoffs, s.XDomainFallbacks)
	if len(doc.DomainStats) > 1 {
		fmt.Fprintf(w, "  %-4s %10s %10s %10s %10s %10s %10s\n",
			"DOM", "FAST", "GENERIC", "COALESCED", "CO.FALL", "HANDOFF", "HO.FALL")
		for d, ds := range doc.DomainStats {
			fmt.Fprintf(w, "  %-4d %10d %10d %10d %10d %10d %10d\n",
				d, ds.FastRuns, ds.Generic, ds.Coalesced, ds.CoalesceFallbacks,
				ds.XDomainHandoffs, ds.XDomainFallbacks)
		}
	}
	return nil
}

// FastPathRow mirrors the fast_paths entries of the /optimizer document
// (event.FastPathInfo's JSON shape, kept structural so the view layer
// does not depend on the runtime package).
type FastPathRow struct {
	Entry       int32    `json:"entry"`
	EntryName   string   `json:"entry_name"`
	Chain       []string `json:"chain"`
	Provenance  string   `json:"provenance"`
	Partitioned bool     `json:"partitioned"`
	Fused       bool     `json:"fused"`
}

// OptimizerDoc mirrors httpdebug's /optimizer response: the flattened
// controller snapshot plus every installed fast path with provenance.
type OptimizerDoc struct {
	telemetry.OptimizerSnapshot
	FastPaths []FastPathRow `json:"fast_paths"`
}

// FetchOptimizer retrieves the /optimizer document (the adaptive
// controller's published state). Servers predating the endpoint return
// an error; callers typically skip the pane then.
func FetchOptimizer(base string) (*telemetry.OptimizerSnapshot, error) {
	doc, err := FetchOptimizerDoc(base)
	if err != nil {
		return nil, err
	}
	return &doc.OptimizerSnapshot, nil
}

// FetchOptimizerDoc retrieves the full /optimizer document including the
// fast-path provenance list (servers predating provenance simply leave
// FastPaths empty).
func FetchOptimizerDoc(base string) (*OptimizerDoc, error) {
	url := base
	if !strings.HasSuffix(url, "/optimizer") {
		url = strings.TrimRight(url, "/") + "/optimizer"
	}
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var doc OptimizerDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%s: decoding: %w", url, err)
	}
	return &doc, nil
}

// RenderOptimizer writes the adaptive-optimizer pane: the controller's
// decision counters and one row per installed super-handler. A nil or
// disabled snapshot renders a single status line, so evtop can always
// show the pane.
func RenderOptimizer(w io.Writer, snap *telemetry.OptimizerSnapshot) error {
	if snap == nil || !snap.Enabled {
		fmt.Fprintln(w, "optimizer: off")
		return nil
	}
	state := "manual"
	if snap.Running {
		state = fmt.Sprintf("every %.0fms", snap.IntervalMs)
	}
	fmt.Fprintf(w, "optimizer: on (%s) tick=%d thresholds=%.0f/%.0f\n",
		state, snap.Tick, snap.PromoteThreshold, snap.DemoteThreshold)
	fmt.Fprintf(w, "  promote=%d demote=%d replan=%d deopt=%d phase-shift=%d skip(cool/gain/cap)=%d/%d/%d\n",
		snap.Promotions, snap.Demotions, snap.Replans, snap.Deopts, snap.PhaseShifts,
		snap.CooldownSkips, snap.GainSkips, snap.LimitSkips)
	if len(snap.Installed) == 0 {
		fmt.Fprintln(w, "  (no super-handlers installed)")
		return nil
	}
	fmt.Fprintf(w, "  %-20s %-30s %-9s %8s %10s %12s %7s\n",
		"ENTRY", "CHAIN", "TIER", "HANDLERS", "SCORE", "EST.GAIN", "REPLANS")
	for _, p := range snap.Installed {
		name := p.EntryName
		if name == "" {
			name = fmt.Sprintf("#%d", p.Entry)
		}
		chain := strings.Join(p.Chain, ">")
		if chain == "" {
			chain = name
		}
		tier := p.Source
		if tier == "" {
			tier = "-"
		}
		fmt.Fprintf(w, "  %-20s %-30s %-9s %8d %10.1f %12s %7d\n",
			fit(name, 20), fit(chain, 30), tier, p.Handlers, p.Score, us(p.GainNs), p.Replans)
	}
	return nil
}

// RenderFastPaths writes the installed-fast-path section of the
// optimizer pane: one row per super-handler with the tier that produced
// it (offline / adaptive / generated / manual). Nothing is printed when
// no fast paths are installed.
func RenderFastPaths(w io.Writer, rows []FastPathRow) error {
	if len(rows) == 0 {
		return nil
	}
	fmt.Fprintf(w, "fast paths: %d installed\n", len(rows))
	fmt.Fprintf(w, "  %-20s %-30s %-9s %5s %5s\n", "ENTRY", "CHAIN", "TIER", "FUSED", "PART")
	for _, p := range rows {
		name := p.EntryName
		if name == "" {
			name = fmt.Sprintf("#%d", p.Entry)
		}
		chain := strings.Join(p.Chain, ">")
		if chain == "" {
			chain = name
		}
		fmt.Fprintf(w, "  %-20s %-30s %-9s %5v %5v\n",
			fit(name, 20), fit(chain, 30), p.Provenance, p.Fused, p.Partitioned)
	}
	return nil
}
