package liveview

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"eventopt/internal/span"
)

// SpansDoc mirrors httpdebug's /spans response.
type SpansDoc struct {
	Enabled         bool         `json:"enabled"`
	SampleEvery     int          `json:"sample_every"`
	SlowThresholdNs int64        `json:"slow_threshold_ns"`
	Stats           span.Stats   `json:"stats"`
	Traces          []span.Trace `json:"traces"`
	Recent          []span.Span  `json:"recent"`
}

// FetchSpans retrieves the /spans document. Servers built without span
// tracing answer 404; callers typically skip the pane then.
func FetchSpans(base string) (*SpansDoc, error) {
	url := base
	if !strings.HasSuffix(url, "/spans") {
		url = strings.TrimRight(url, "/") + "/spans"
	}
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var doc SpansDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%s: decoding: %w", url, err)
	}
	return &doc, nil
}

// RenderSpans writes the span pane: the collector's statistics line and
// up to maxTraces retained traces, each drawn as its causal tree. Every
// span row names the event, the hop kind that linked it to its parent,
// the tier that executed it, the domain and the duration; fallback and
// fault flags are appended so a degraded hop is visible at a glance.
func RenderSpans(w io.Writer, doc *SpansDoc, maxTraces int) error {
	if doc == nil || !doc.Enabled {
		fmt.Fprintln(w, "spans: off")
		return nil
	}
	st := doc.Stats
	fmt.Fprintf(w, "spans: 1/%d sampled — %d roots seen, %d sampled, %d spans; retained %d (%d faulted, %d slow)",
		doc.SampleEvery, st.RootsSeen, st.RootsSampled, st.Spans, st.Retained, st.Faulted, st.SlowRoots)
	if doc.SlowThresholdNs > 0 {
		fmt.Fprintf(w, "; slow>%s", us(float64(doc.SlowThresholdNs)))
	}
	fmt.Fprintln(w)
	if len(doc.Traces) == 0 {
		fmt.Fprintln(w, "  (no retained traces yet)")
		return nil
	}
	if maxTraces <= 0 {
		maxTraces = 4
	}
	shown := doc.Traces
	if len(shown) > maxTraces {
		shown = shown[len(shown)-maxTraces:] // newest retained traces
	}
	for _, tr := range shown {
		fmt.Fprintf(w, "  trace %016x [%s] %d spans\n", tr.Trace, tr.Reason, len(tr.Spans))
		renderTraceTree(w, tr.Spans)
	}
	return nil
}

// renderTraceTree prints one trace's spans as an indented causal tree
// (children under their parents, siblings in start order). Spans whose
// parent is missing from the trace (ring overwrite) are printed at the
// root level, so a partially evicted trace still renders.
func renderTraceTree(w io.Writer, spans []span.Span) {
	byParent := make(map[uint64][]span.Span, len(spans))
	ids := make(map[uint64]bool, len(spans))
	for _, sp := range spans {
		ids[sp.ID] = true
	}
	var roots []span.Span
	for _, sp := range spans {
		if sp.Parent == 0 || !ids[sp.Parent] {
			roots = append(roots, sp)
			continue
		}
		byParent[sp.Parent] = append(byParent[sp.Parent], sp)
	}
	order := func(s []span.Span) {
		sort.SliceStable(s, func(i, j int) bool { return s[i].Start < s[j].Start })
	}
	order(roots)
	var walk func(sp span.Span, depth int)
	walk = func(sp span.Span, depth int) {
		name := sp.Name
		if name == "" {
			name = fmt.Sprintf("#%d", sp.Event)
		}
		line := fmt.Sprintf("%s%s", strings.Repeat("  ", depth+2), fit(name, nameWidth))
		fmt.Fprintf(w, "%-34s %-11s %-9s d%-3d %9s", line, sp.Kind, sp.Tier, sp.Domain, us(float64(sp.Duration())))
		if sp.Flags != 0 {
			fmt.Fprintf(w, "  [%s]", sp.Flags)
		}
		fmt.Fprintln(w)
		kids := byParent[sp.ID]
		order(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}
