package eventopt

// Benchmarks regenerating the paper's measurements as testing.B targets,
// one family per table/figure, plus ablations over the design choices
// (guard organization, merge depth, HIR fusion) and the substrates.
// Run with: go test -bench=. -benchmem

import (
	"bytes"
	"testing"

	"eventopt/internal/ciphers"
	"eventopt/internal/core"
	"eventopt/internal/ctp"
	"eventopt/internal/event"
	"eventopt/internal/hir"
	"eventopt/internal/profile"
	"eventopt/internal/seccomm"
	"eventopt/internal/trace"
	"eventopt/internal/video"
	"eventopt/internal/xwin"
)

// ---- shared setup ----

func benchPlayer(b *testing.B, optimize bool, opts core.Options) *video.Player {
	b.Helper()
	p, err := video.NewPlayer(ctp.DefaultConfig(), 25, 900)
	if err != nil {
		b.Fatal(err)
	}
	if optimize {
		if _, err := p.Optimize(200, opts); err != nil {
			b.Fatal(err)
		}
	} else {
		p.Run(50)
	}
	return p
}

func profileAndApply(b *testing.B, sys *event.System, mod *Module, drive func(int), opts core.Options) {
	b.Helper()
	rec := trace.NewRecorder()
	rec.EnableHandlerProfiling()
	sys.SetTracer(rec)
	drive(60)
	sys.SetTracer(nil)
	prof, err := profile.Analyze(rec.Entries())
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := core.Apply(sys, prof, mod, opts); err != nil {
		b.Fatal(err)
	}
}

// ---- Figure 10: video player per-frame cost ----

func benchFrames(b *testing.B, p *video.Player) {
	frame := make([]byte, 900)
	s := p.Sender
	s.Start()
	interval := event.Duration(40e6) // 25 fps
	base := s.Sys.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SendFrame(frame, i%10 == 0)
		s.Sys.DrainFor(base + event.Duration(i+1)*interval)
	}
}

func BenchmarkFig10FrameOrig(b *testing.B) {
	benchFrames(b, benchPlayer(b, false, core.Options{}))
}

func BenchmarkFig10FrameOpt(b *testing.B) {
	benchFrames(b, benchPlayer(b, true, core.DefaultOptions()))
}

// ---- Figure 11: per-event processing time ----

func benchEvent(b *testing.B, p *video.Player, name string) {
	s := p.Sender
	seg := make([]byte, 900)
	seq := s.Seq() + 1e6
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch name {
		case "Adapt":
			s.Sys.Raise(s.Ev.Adapt)
		case "SegFromUser":
			s.Sys.Raise(s.Ev.SegFromUser, event.A("seg", seg), event.A("len", len(seg)))
		case "Seg2Net":
			seq++
			s.Sys.Raise(s.Ev.Seg2Net, event.A("seg", seg), event.A("seq", seq), event.A("fec", 0))
		}
		if i&63 == 0 {
			s.Sys.DrainFor(s.Sys.Now() + s.Cfg.RTT + 1e6)
		}
	}
}

func BenchmarkFig11AdaptOrig(b *testing.B) {
	benchEvent(b, benchPlayer(b, false, core.Options{}), "Adapt")
}
func BenchmarkFig11AdaptOpt(b *testing.B) {
	benchEvent(b, benchPlayer(b, true, core.DefaultOptions()), "Adapt")
}
func BenchmarkFig11SegFromUserOrig(b *testing.B) {
	benchEvent(b, benchPlayer(b, false, core.Options{}), "SegFromUser")
}
func BenchmarkFig11SegFromUserOpt(b *testing.B) {
	benchEvent(b, benchPlayer(b, true, core.DefaultOptions()), "SegFromUser")
}
func BenchmarkFig11Seg2NetOrig(b *testing.B) {
	benchEvent(b, benchPlayer(b, false, core.Options{}), "Seg2Net")
}
func BenchmarkFig11Seg2NetOpt(b *testing.B) {
	benchEvent(b, benchPlayer(b, true, core.DefaultOptions()), "Seg2Net")
}

// ---- Figure 12: SecComm push/pop across packet sizes ----

func benchSecComm(b *testing.B, size int, optimize, pop bool) {
	cfg := seccomm.Config{
		DESKey: []byte("8bytekey"),
		XORKey: []byte{0x5A, 0xA5, 0x3C},
		IV:     []byte("initvect"),
	}
	e, err := seccomm.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, size)
	var pkt []byte
	e.OnSend(func(p []byte) { pkt = append(pkt[:0], p...) })
	e.Push(msg)
	wire := append([]byte(nil), pkt...)
	if optimize {
		opts := core.DefaultOptions()
		opts.MergeAll = true
		opts.FullFusion = true
		opts.Partitioned = false
		profileAndApply(b, e.Sys, e.Mod, func(n int) {
			for i := 0; i < n; i++ {
				e.Push(msg)
				e.HandlePacket(wire)
			}
		}, opts)
	}
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pop {
			e.HandlePacket(wire)
		} else {
			e.Push(msg)
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	for _, size := range []int{64, 256, 1024, 2048} {
		for _, dir := range []string{"Push", "Pop"} {
			for _, variant := range []string{"Orig", "Opt"} {
				name := dir + "/" + variant + "/" + itoa(size)
				b.Run(name, func(b *testing.B) {
					benchSecComm(b, size, variant == "Opt", dir == "Pop")
				})
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// ---- Figure 13: X events ----

func BenchmarkFig13ScrollOrig(b *testing.B) {
	g := xwin.NewGvim()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Scroll(i * 7 % 360)
	}
}

func BenchmarkFig13ScrollOpt(b *testing.B) {
	g := xwin.NewGvim()
	opts := core.DefaultOptions()
	opts.MergeAll = true
	profileAndApply(b, g.Client.Sys, g.Client.Mod, func(n int) {
		for i := 0; i < n; i++ {
			g.Scroll(i * 3 % 360)
		}
	}, opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Scroll(i * 7 % 360)
	}
}

func BenchmarkFig13PopupOrig(b *testing.B) {
	x := xwin.NewXTerm()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Popup(30, i%60)
		if i&255 == 0 {
			x.Client.Display.Reset()
		}
	}
}

func BenchmarkFig13PopupOpt(b *testing.B) {
	x := xwin.NewXTerm()
	opts := core.DefaultOptions()
	opts.MergeAll = true
	profileAndApply(b, x.Client.Sys, x.Client.Mod, func(n int) {
		for i := 0; i < n; i++ {
			x.Popup(30, i%60)
		}
	}, opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Popup(30, i%60)
		if i&255 == 0 {
			x.Client.Display.Reset()
		}
	}
}

// ---- Ablations: guard organization, merge depth, fusion level ----

// ablationApp builds a three-event chain with HIR handlers everywhere.
func ablationApp(b *testing.B) (*App, ID) {
	app := New()
	aEv := app.Sys.Define("A")
	bEv := app.Sys.Define("B")
	cEv := app.Sys.Define("C")

	mk := func(cell string, raise string) *hir.Function {
		hb := hir.NewBuilder("h_"+cell, 0)
		v := hb.Load(cell)
		one := hb.Int(1)
		hb.Store(cell, hb.Bin(hir.Add, v, one))
		if raise != "" {
			n := hb.Arg("n")
			hb.Raise(raise, []string{"n"}, []hir.Reg{n})
		}
		hb.Return(hir.NoReg)
		return hb.Fn()
	}
	app.Mod.Bind(aEv, "a1", mk("ca1", ""), WithOrder(1))
	app.Mod.Bind(aEv, "a2", mk("ca2", "B"), WithOrder(2))
	app.Mod.Bind(bEv, "b1", mk("cb1", ""), WithOrder(1))
	app.Mod.Bind(bEv, "b2", mk("cb2", "C"), WithOrder(2))
	app.Mod.Bind(cEv, "c1", mk("cc1", ""))
	return app, aEv
}

func runAblation(b *testing.B, configure func(*core.Options) bool) {
	app, aEv := ablationApp(b)
	opts := core.DefaultOptions()
	opts.MergeAll = true
	install := true
	if configure != nil {
		install = configure(&opts)
	}
	if install {
		app.StartProfiling()
		for i := 0; i < 60; i++ {
			app.Sys.Raise(aEv, A("n", i))
		}
		prof, err := app.StopProfiling()
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := app.Optimize(prof, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app.Sys.Raise(aEv, A("n", i))
	}
}

func BenchmarkAblationGeneric(b *testing.B) {
	runAblation(b, func(*core.Options) bool { return false })
}

func BenchmarkAblationStepsOnly(b *testing.B) {
	runAblation(b, func(o *core.Options) bool { o.FuseHIR = false; return true })
}

func BenchmarkAblationNoSubsume(b *testing.B) {
	runAblation(b, func(o *core.Options) bool { o.Subsume = false; return true })
}

func BenchmarkAblationPerSegmentFusion(b *testing.B) {
	runAblation(b, nil)
}

func BenchmarkAblationMonolithicGuard(b *testing.B) {
	runAblation(b, func(o *core.Options) bool { o.Partitioned = false; return true })
}

func BenchmarkAblationFullFusion(b *testing.B) {
	runAblation(b, func(o *core.Options) bool {
		o.FullFusion = true
		o.Partitioned = false
		return true
	})
}

func BenchmarkAblationFullFusionCompiled(b *testing.B) {
	runAblation(b, func(o *core.Options) bool {
		o.FullFusion = true
		o.Partitioned = false
		o.CompileClosures = true
		return true
	})
}

func BenchmarkAblationSpeculative(b *testing.B) {
	runAblation(b, func(o *core.Options) bool {
		o.Speculative = true
		return true
	})
}

// BenchmarkRebindFallback measures the cost of raising an event whose
// super-handler guard fails (section 3.3's fallback path).
func BenchmarkRebindFallback(b *testing.B) {
	app, aEv := ablationApp(b)
	app.StartProfiling()
	for i := 0; i < 60; i++ {
		app.Sys.Raise(aEv, A("n", i))
	}
	prof, err := app.StopProfiling()
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Partitioned = false
	if _, _, err := app.Optimize(prof, opts); err != nil {
		b.Fatal(err)
	}
	// Invalidate the entry guard.
	app.Sys.Bind(aEv, "late", func(*Ctx) {}, WithOrder(9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app.Sys.Raise(aEv, A("n", i))
	}
}

// ---- Substrates ----

func BenchmarkDESBlock(b *testing.B) {
	d, err := ciphers.NewDES([]byte("8bytekey"))
	if err != nil {
		b.Fatal(err)
	}
	var in, out [8]byte
	b.SetBytes(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.EncryptBlock(out[:], in[:])
	}
}

func BenchmarkMD5_1K(b *testing.B) {
	msg := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ciphers.MD5(msg)
	}
}

// BenchmarkGraphBuilder measures the Fig. 4 profiling algorithm itself.
func BenchmarkGraphBuilder(b *testing.B) {
	entries := make([]trace.Entry, 10000)
	for i := range entries {
		id := event.ID(i * 7 % 20)
		entries[i] = trace.Entry{Kind: trace.EventRaised, Event: id,
			EventName: "E", Mode: event.Mode(i % 2), Depth: 0}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profile.BuildEventGraph(entries)
	}
}

// BenchmarkHIRInterp measures raw interpreter throughput on the merged
// Adapt body workload shape.
func BenchmarkHIRInterp(b *testing.B) {
	hb := hir.NewBuilder("body", 0)
	v := hb.Load("x")
	one := hb.Int(1)
	v2 := hb.Bin(hir.Add, v, one)
	hb.Store("x", v2)
	k := hb.Bin(hir.And, v2, hb.Int(7))
	z := hb.Int(0)
	c := hb.Bin(hir.Eq, k, z)
	t := hb.NewBlock()
	f := hb.NewBlock()
	hb.SetBlock(hir.Entry)
	hb.Branch(c, t, f)
	hb.SetBlock(t)
	hb.Store("y", v2)
	hb.Return(hir.NoReg)
	hb.SetBlock(f)
	hb.Return(hir.NoReg)
	fn := hb.Fn()
	env := &hir.Env{Globals: hir.NewState()}
	var scratch []hir.Value
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, scratch, _ = hir.ExecReuse(fn, env, scratch)
	}
}

// BenchmarkHIRCompiled is the same workload through the closure compiler.
func BenchmarkHIRCompiled(b *testing.B) {
	hb := hir.NewBuilder("body", 0)
	v := hb.Load("x")
	one := hb.Int(1)
	v2 := hb.Bin(hir.Add, v, one)
	hb.Store("x", v2)
	k := hb.Bin(hir.And, v2, hb.Int(7))
	z := hb.Int(0)
	c := hb.Bin(hir.Eq, k, z)
	t := hb.NewBlock()
	f := hb.NewBlock()
	hb.SetBlock(hir.Entry)
	hb.Branch(c, t, f)
	hb.SetBlock(t)
	hb.Store("y", v2)
	hb.Return(hir.NoReg)
	hb.SetBlock(f)
	hb.Return(hir.NoReg)
	fn := hb.Fn()
	env := &hir.Env{Globals: hir.NewState()}
	comp, err := hir.Compile(fn, env)
	if err != nil {
		b.Fatal(err)
	}
	var scratch []hir.Value
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, scratch, _ = comp.Exec(scratch)
	}
}

// BenchmarkTracingOverhead prices the paper's instrumentation itself:
// the same hot-path raise with and without the trace recorder installed.
func BenchmarkTracingOverhead(b *testing.B) {
	for _, traced := range []bool{false, true} {
		name := "off"
		if traced {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			app, aEv := ablationApp(b)
			if traced {
				rec := trace.NewRecorder()
				rec.EnableHandlerProfiling()
				app.Sys.SetTracer(rec)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				app.Sys.Raise(aEv, A("n", i))
			}
		})
	}
}

// BenchmarkTraceEncoding compares the text and binary trace formats.
func BenchmarkTraceEncoding(b *testing.B) {
	entries := make([]trace.Entry, 0, 4000)
	for i := 0; i < 2000; i++ {
		id := event.ID(i % 10)
		entries = append(entries, trace.Entry{Kind: trace.EventRaised, Event: id,
			EventName: "Event" + itoa(int(id)), Mode: event.Mode(i % 2)})
		entries = append(entries, trace.Entry{Kind: trace.HandlerEnter, Event: id,
			EventName: "Event" + itoa(int(id)), Handler: "handler"})
	}
	b.Run("text", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if _, err := trace.WriteEntries(&buf, entries); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(buf.Len()))
		}
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := trace.WriteBinary(&buf, entries); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(buf.Len()))
		}
	})
}
