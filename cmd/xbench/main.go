// Command xbench regenerates Figure 13: execution time of the X events
// Scroll (gvim scrollbar) and Popup (xterm menu), original versus
// optimized, on the simulated X Window system.
package main

import (
	"flag"
	"fmt"
	"os"

	"eventopt/internal/bench"
)

func main() {
	n := flag.Int("n", 250, "activations per event (the paper used 250)")
	flag.Parse()
	if _, err := bench.RunFig13(os.Stdout, *n); err != nil {
		fmt.Fprintln(os.Stderr, "xbench:", err)
		os.Exit(1)
	}
}
