// Command evtop is a top-style viewer for a live event system: it polls
// the /events endpoint served by telemetry/httpdebug and redraws a
// per-event table of activation counts, latency quantiles and queue
// delay. Run the system with WithTelemetry and an httpdebug server (see
// examples/monitor), then:
//
//	evtop -url http://localhost:6060
//
// Flags select the poll interval, the sort column (count, mean, p99,
// max or faults) and single-shot mode for scripting (-once prints one
// table without clearing the screen). A dispatch pane below the table
// shows how activations split between the fast and generic routes and
// how speculative coalescing and cross-domain handoff fared
// (-no-dispatch hides it). When the server runs the adaptive
// optimizer, an optimizer pane below the table shows the installed
// super-handlers and the controller's promote/demote/deopt counters
// (-no-optimizer hides it); when it traces spans, a span pane shows the
// retained causal traces (-no-spans hides it, -traces caps how many).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"eventopt/internal/liveview"
)

func main() {
	var (
		url      = flag.String("url", "http://localhost:6060", "base URL of the telemetry endpoint")
		interval = flag.Duration("interval", 2*time.Second, "poll interval")
		once     = flag.Bool("once", false, "print one table and exit (no screen clearing)")
		sortKey  = flag.String("sort", liveview.SortCount, "sort column: count, mean, p99, max or faults")
		merged   = flag.Bool("merged", false, "merge per-domain cells into one row per event")
		noOpt    = flag.Bool("no-optimizer", false, "hide the adaptive-optimizer pane")
		noDisp   = flag.Bool("no-dispatch", false, "hide the dispatch-route pane (fast/generic/coalesce/handoff)")
		noSpans  = flag.Bool("no-spans", false, "hide the span-trace pane")
		traces   = flag.Int("traces", 4, "retained traces shown in the span pane")
	)
	flag.Parse()

	switch *sortKey {
	case liveview.SortCount, liveview.SortMean, liveview.SortP99, liveview.SortMax, liveview.SortFaults:
	default:
		fmt.Fprintf(os.Stderr, "evtop: unknown sort key %q\n", *sortKey)
		os.Exit(2)
	}

	for {
		doc, err := liveview.Fetch(*url)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evtop:", err)
			os.Exit(1)
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		fmt.Printf("evtop — %s — %s (timed 1/%d sampled, counts scaled)\n\n",
			*url, time.Now().Format("15:04:05"), doc.TimeSampleEvery)
		if err := liveview.Render(os.Stdout, doc, *sortKey, *merged); err != nil {
			fmt.Fprintln(os.Stderr, "evtop:", err)
			os.Exit(1)
		}
		if !*noDisp {
			// Route counters come from /metrics, which every server has.
			if m, err := liveview.FetchMetrics(*url); err == nil {
				fmt.Println()
				_ = liveview.RenderDispatch(os.Stdout, m)
			}
		}
		if !*noOpt {
			// Older servers lack /optimizer; skip the pane quietly then.
			if opt, err := liveview.FetchOptimizerDoc(*url); err == nil {
				fmt.Println()
				_ = liveview.RenderOptimizer(os.Stdout, &opt.OptimizerSnapshot)
				_ = liveview.RenderFastPaths(os.Stdout, opt.FastPaths)
			}
		}
		if !*noSpans {
			// Servers without span tracing answer 404; skip quietly.
			if sp, err := liveview.FetchSpans(*url); err == nil {
				fmt.Println()
				_ = liveview.RenderSpans(os.Stdout, sp, *traces)
			}
		}
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}
