// Command paperbench regenerates the paper's entire evaluation section
// in one run: the event graphs (Figs. 5-6), the video player tables
// (Figs. 10-11), the SecComm table (Fig. 12), the X client table
// (Fig. 13), the section 1 overhead-share claim and the section 4.2
// code-size note. Use -quick for a fast pass with reduced iteration
// counts.
package main

import (
	"flag"
	"fmt"
	"os"

	"eventopt/internal/bench"
)

func main() {
	var (
		quick        = flag.Bool("quick", false, "reduced iteration counts")
		overhead     = flag.Bool("overhead", true, "include the overhead-share measurement")
		codesize     = flag.Bool("codesize", true, "include the code-size measurement")
		dot          = flag.Bool("dot", false, "emit DOT for the graphs")
		parallel     = flag.Bool("parallel", false, "include the multi-domain throughput benchmark")
		parallelJSON = flag.String("parallel-json", "", "write the parallel benchmark report to this file (implies -parallel)")
		allocs       = flag.Bool("allocs", false, "include the hot-path allocation gate")
		allocsJSON   = flag.String("allocs-json", "", "write the allocation report to this file (implies -allocs)")
		telem        = flag.Bool("telemetry", false, "include the telemetry overhead gate")
		telemJSON    = flag.String("telemetry-json", "", "write the telemetry overhead report to this file (implies -telemetry)")
		adapt        = flag.Bool("adaptive", false, "include the adaptive optimizer convergence gate")
		adaptJSON    = flag.String("adaptive-json", "", "write the adaptive convergence report to this file (implies -adaptive)")
		batch        = flag.Bool("batch", false, "include the batched-drain and async-chain-merging gate")
		batchJSON    = flag.String("batch-json", "", "write the batch benchmark report to this file (implies -batch)")
		codegen      = flag.Bool("codegen", false, "include the generated-code tier gate")
		codegenJSON  = flag.String("codegen-json", "", "write the codegen tier report to this file (implies -codegen)")
		spans        = flag.Bool("spans", false, "include the span tracing overhead gate")
		spansJSON    = flag.String("spans-json", "", "write the span overhead report to this file (implies -spans)")
		xdomain      = flag.Bool("xdomain", false, "include the cross-domain handoff and K-tuning gate")
		xdomainJSON  = flag.String("xdomain-json", "", "write the cross-domain report to this file (implies -xdomain)")
		compare      = flag.Bool("compare", false, "compare two bench report JSON files (old.json new.json) and exit")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "paperbench: -compare needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		if err := bench.CompareReports(os.Stdout, flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: compare: %v\n", err)
			os.Exit(1)
		}
		return
	}

	frames, iters, msgs, xiters, ohFrames, praises, aops, tops, adops, bevents, cgiters, spops, xdevents := 400, 2000, 1000, 1000, 400, 400000, 20000, 200000, 20000, 120000, 20000, 200000, 100000
	if *quick {
		frames, iters, msgs, xiters, ohFrames, praises, aops, tops, adops, bevents, cgiters, spops, xdevents = 120, 400, 200, 250, 150, 60000, 5000, 50000, 5000, 40000, 5000, 50000, 30000
	}

	step := func(name string, f func() error) {
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	step("fig5", func() error { _, err := bench.RunFig5(os.Stdout, *dot); return err })
	step("fig6", func() error { _, err := bench.RunFig6(os.Stdout, 300, *dot); return err })
	step("fig8", func() error { _, err := bench.RunFig8(os.Stdout, *dot); return err })
	step("fig10", func() error { _, err := bench.RunFig10(os.Stdout, frames); return err })
	step("fig11", func() error { _, err := bench.RunFig11(os.Stdout, iters); return err })
	step("fig12", func() error { _, err := bench.RunFig12(os.Stdout, msgs); return err })
	step("fig13", func() error { _, err := bench.RunFig13(os.Stdout, xiters); return err })
	if *overhead {
		step("overhead", func() error { _, err := bench.RunOverhead(os.Stdout, ohFrames); return err })
	}
	if *codesize {
		step("codesize", func() error { return bench.RunCodeSize(os.Stdout) })
	}
	if *parallel || *parallelJSON != "" {
		step("parallel", func() error {
			rep, err := bench.RunParallel(os.Stdout, praises)
			if err != nil {
				return err
			}
			if *parallelJSON == "" {
				return nil
			}
			f, err := os.Create(*parallelJSON)
			if err != nil {
				return err
			}
			defer f.Close()
			return rep.WriteJSON(f)
		})
	}
	if *allocs || *allocsJSON != "" {
		step("allocs", func() error {
			rep, gateErr := bench.RunAllocs(os.Stdout, aops)
			if *allocsJSON != "" && rep != nil {
				f, err := os.Create(*allocsJSON)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := rep.WriteJSON(f); err != nil {
					return err
				}
			}
			return gateErr
		})
	}
	if *telem || *telemJSON != "" {
		step("telemetry", func() error {
			// The telemetry delta is single-digit nanoseconds, so this gate
			// needs far more iterations than the allocation gate to measure
			// it above timer noise; each raise is ~150ns, so even the full
			// count finishes in well under a second.
			rep, gateErr := bench.RunTelemetry(os.Stdout, tops)
			if *telemJSON != "" && rep != nil {
				f, err := os.Create(*telemJSON)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := rep.WriteJSON(f); err != nil {
					return err
				}
			}
			return gateErr
		})
	}
	if *adapt || *adaptJSON != "" {
		step("adaptive", func() error {
			rep, gateErr := bench.RunAdaptive(os.Stdout, adops)
			if *adaptJSON != "" && rep != nil {
				f, err := os.Create(*adaptJSON)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := rep.WriteJSON(f); err != nil {
					return err
				}
			}
			return gateErr
		})
	}
	if *batch || *batchJSON != "" {
		step("batch", func() error {
			rep, gateErr := bench.RunBatch(os.Stdout, bevents)
			if *batchJSON != "" && rep != nil {
				f, err := os.Create(*batchJSON)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := rep.WriteJSON(f); err != nil {
					return err
				}
			}
			return gateErr
		})
	}
	if *spans || *spansJSON != "" {
		step("spans", func() error {
			// Like the telemetry gate, the span layer's increment is a few
			// nanoseconds per raise, so the gate uses the same high
			// iteration count to resolve it above timer noise.
			rep, gateErr := bench.RunSpans(os.Stdout, spops)
			if *spansJSON != "" && rep != nil {
				f, err := os.Create(*spansJSON)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := rep.WriteJSON(f); err != nil {
					return err
				}
			}
			return gateErr
		})
	}
	if *xdomain || *xdomainJSON != "" {
		step("xdomain", func() error {
			rep, gateErr := bench.RunXDomain(os.Stdout, xdevents)
			if *xdomainJSON != "" && rep != nil {
				f, err := os.Create(*xdomainJSON)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := rep.WriteJSON(f); err != nil {
					return err
				}
			}
			return gateErr
		})
	}
	if *codegen || *codegenJSON != "" {
		step("codegen", func() error {
			rep, gateErr := bench.RunCodegen(os.Stdout, cgiters)
			if *codegenJSON != "" && rep != nil {
				f, err := os.Create(*codegenJSON)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := rep.WriteJSON(f); err != nil {
					return err
				}
			}
			return gateErr
		})
	}
}
