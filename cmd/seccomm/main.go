// Command seccomm regenerates Figure 12: time spent in the SecComm
// secure-communication service's push and pop portions, before and after
// profile-directed optimization, across packet sizes.
package main

import (
	"flag"
	"fmt"
	"os"

	"eventopt/internal/bench"
)

func main() {
	n := flag.Int("n", 1000, "messages per packet size (the paper used 1000)")
	flag.Parse()
	if _, err := bench.RunFig12(os.Stdout, *n); err != nil {
		fmt.Fprintln(os.Stderr, "seccomm:", err)
		os.Exit(1)
	}
}
