package main

import (
	"fmt"
	"os"

	"eventopt/internal/codegen/genplan"
	"eventopt/internal/event"
	"eventopt/internal/telemetry"
)

// writePGO re-runs the workload's profiling drive on a telemetry-enabled
// system and exports the result as a pprof CPU profile for
// `go build -pgo`. This is the outer loop of the optimizer: the same
// hot paths that shaped the plan now steer the Go compiler's inlining.
func writePGO(workload, out string) error {
	var sys *event.System
	switch workload {
	case "seccomm":
		e, err := genplan.SecCommEndpoint(event.WithTelemetry(telemetry.Config{}))
		if err != nil {
			return err
		}
		if _, err := genplan.SecCommPlan(e); err != nil {
			return err
		}
		sys = e.Sys
	case "videoplayer":
		p, err := genplan.VideoPlayer(event.WithTelemetry(telemetry.Config{}))
		if err != nil {
			return err
		}
		if _, err := genplan.VideoPlan(p); err != nil {
			return err
		}
		sys = p.Sender.Sys
	default:
		return fmt.Errorf("-pgo: unknown workload %q", workload)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := sys.WritePGO(f); err != nil {
		return err
	}
	fmt.Printf("evgen: wrote pprof profile %s\n", out)
	return nil
}
