// Command evgen is the ahead-of-time super-handler compiler: it builds
// a workload's golden profile plan (internal/codegen/genplan), lowers
// every fused segment body to real Go source (internal/codegen), and
// writes the file that internal/codegen/gen checks in. The generated
// supers install at runtime through core.InstallGenerated.
//
//	evgen -workload seccomm -o internal/codegen/gen/seccomm_gen.go
//	evgen -workload seccomm -o ... -verify   # CI drift check, no write
//	evgen -workload seccomm -pgo default.pgo # also export a pprof CPU
//	                                         # profile from the plan's
//	                                         # profiling run (go build -pgo)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"eventopt/internal/codegen"
	"eventopt/internal/codegen/genplan"
	"eventopt/internal/core"
	"eventopt/internal/event"
	"eventopt/internal/hirrt"
)

func main() {
	var (
		workload = flag.String("workload", "seccomm", "plan recipe: "+strings.Join(genplan.Workloads, "|"))
		out      = flag.String("o", "", "output file (default stdout)")
		pkg      = flag.String("pkg", "gen", "package name for the generated file")
		verify   = flag.Bool("verify", false, "compare against -o instead of writing; exit 1 on drift")
		pgoOut   = flag.String("pgo", "", "also write a pprof CPU profile exported from the workload's telemetry")
	)
	flag.Parse()

	if err := run(*workload, *out, *pkg, *verify, *pgoOut); err != nil {
		fmt.Fprintf(os.Stderr, "evgen: %v\n", err)
		os.Exit(1)
	}
}

func run(workload, out, pkg string, verify bool, pgoOut string) error {
	var (
		sys  *event.System
		mod  *hirrt.Module
		plan *core.Plan
		err  error
	)
	switch workload {
	case "seccomm":
		ep, err2 := genplan.SecCommEndpoint()
		if err2 != nil {
			return err2
		}
		plan, err = genplan.SecCommPlan(ep)
		sys, mod = ep.Sys, ep.Mod
	case "videoplayer":
		p, err2 := genplan.VideoPlayer()
		if err2 != nil {
			return err2
		}
		plan, err = genplan.VideoPlan(p)
		sys, mod = p.Sender.Sys, p.Sender.Mod
	default:
		return fmt.Errorf("unknown workload %q (have %s)", workload, strings.Join(genplan.Workloads, ", "))
	}
	if err != nil {
		return err
	}

	src, err := codegen.Generate(codegen.Config{
		Package:  pkg,
		Prefix:   prefixFor(workload),
		Workload: workload,
	}, sys, mod, plan)
	if err != nil {
		return err
	}

	if pgoOut != "" {
		if err := writePGO(workload, pgoOut); err != nil {
			return err
		}
		if out == "" && !verify {
			return nil // -pgo alone: no source requested, skip the stdout dump
		}
	}

	if verify {
		if out == "" {
			return fmt.Errorf("-verify requires -o")
		}
		have, err := os.ReadFile(out)
		if err != nil {
			return fmt.Errorf("read %s: %w", out, err)
		}
		if !bytes.Equal(have, src) {
			return fmt.Errorf("%s is out of date; regenerate with: go run ./cmd/evgen -workload %s -o %s", out, workload, out)
		}
		fmt.Printf("evgen: %s up to date (%d bytes)\n", out, len(src))
		return nil
	}
	if out == "" {
		_, err = os.Stdout.Write(src)
		return err
	}
	return os.WriteFile(out, src, 0o644)
}

// prefixFor maps a workload name to the exported identifier prefix of
// its generated file ("seccomm" -> "Seccomm").
func prefixFor(workload string) string {
	var b strings.Builder
	up := true
	for _, r := range workload {
		if r == '-' || r == '_' {
			up = true
			continue
		}
		if up {
			b.WriteString(strings.ToUpper(string(r)))
			up = false
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}
