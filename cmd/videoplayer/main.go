// Command videoplayer regenerates the paper's video player experiments:
// Figure 10 (total and handler time across frame rates) and Figure 11
// (per-event processing times for Adapt, SegFromUser and Seg2Net).
package main

import (
	"flag"
	"fmt"
	"os"

	"eventopt/internal/bench"
)

func main() {
	var (
		table  = flag.String("table", "all", "which table to run: fig10, fig11, all")
		frames = flag.Int("frames", 400, "frames per Fig. 10 measurement")
		iters  = flag.Int("iters", 2000, "activations per Fig. 11 event")
	)
	flag.Parse()

	switch *table {
	case "fig10":
		run10(*frames)
	case "fig11":
		run11(*iters)
	case "all":
		run10(*frames)
		run11(*iters)
	default:
		fmt.Fprintf(os.Stderr, "videoplayer: unknown table %q\n", *table)
		os.Exit(2)
	}
}

func run10(frames int) {
	if _, err := bench.RunFig10(os.Stdout, frames); err != nil {
		fatal(err)
	}
}

func run11(iters int) {
	if _, err := bench.RunFig11(os.Stdout, iters); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "videoplayer:", err)
	os.Exit(1)
}
