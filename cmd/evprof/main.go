// Command evprof regenerates the paper's event-graph figures: it runs
// the video player workload under instrumentation, builds the event
// graph (Fig. 5), reduces it by a threshold (Fig. 6), and prints edges,
// event paths and chains — optionally as Graphviz DOT.
//
// It can also analyze a previously saved trace file (-trace), decoupling
// profiling runs from analysis as in the paper's off-line workflow, or
// query a running system's live telemetry endpoint (-live URL) for the
// continuously profiled counterpart of the same tables.
//
// With -check it validates instead of analyzing: a saved trace (text or
// binary) is run through the consistency checker (balanced enter/exit
// nesting, per-domain monotonic sequencing, publish discipline), and a
// flight-dump JSON file through the flight-recorder invariants. The exit
// status is non-zero when any violation is found, so CI can gate on
// golden traces staying coherent.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"eventopt/internal/bench"
	"eventopt/internal/liveview"
	"eventopt/internal/profile"
	"eventopt/internal/telemetry"
	"eventopt/internal/trace"
)

func main() {
	var (
		threshold = flag.Int("threshold", 300, "edge-weight threshold for the reduced graph (Fig. 6 used 300)")
		dot       = flag.Bool("dot", false, "emit Graphviz DOT after each table")
		traceFile = flag.String("trace", "", "analyze a saved trace file instead of running the video player")
		saveTrace = flag.String("save", "", "write the generated trace to this file")
		full      = flag.Bool("full", true, "print the full event graph (Fig. 5)")
		reduced   = flag.Bool("reduced", true, "print the reduced graph, paths and chains (Fig. 6)")
		handlers  = flag.Bool("handlers", false, "print the handler graph of the hot pair (Fig. 8)")
		binaryOut = flag.Bool("binary", false, "write -save traces in the compact binary format")
		stats     = flag.Bool("stats", false, "print the runtime counters (dispatch, faults, degradation) after the workload")
		live      = flag.String("live", "", "fetch and print the live per-event telemetry of a running system (base URL of its httpdebug endpoint)")
		check     = flag.Bool("check", false, "validate -trace (trace file or flight-dump JSON) for consistency instead of analyzing it; exit 1 on violations")
		workload  = flag.String("workload", "videoplayer", "workload behind -save and -check without -trace: videoplayer, seccomm or batchpipe")
		batch     = flag.Int("batch", 0, "drain the workload in batches of up to this many activations per queue-lock acquisition (0: unbatched; batchpipe defaults to 8)")
	)
	flag.Parse()

	if *check {
		if err := runCheck(*traceFile, *workload, *batch); err != nil {
			fatal(err)
		}
		return
	}

	if *live != "" {
		doc, err := liveview.Fetch(*live)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("live telemetry from %s (timed 1/%d sampled, counts scaled):\n\n", *live, doc.TimeSampleEvery)
		if err := liveview.Render(os.Stdout, doc, liveview.SortCount, false); err != nil {
			fatal(err)
		}
		return
	}

	if *traceFile != "" {
		analyzeFile(*traceFile, *threshold, *dot)
		return
	}

	if *saveTrace != "" {
		entries, err := workloadEntries(*workload, *batch)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*saveTrace)
		if err != nil {
			fatal(err)
		}
		if *binaryOut {
			err = trace.WriteBinary(f, entries)
		} else {
			_, err = trace.WriteEntries(f, entries)
		}
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d trace entries to %s\n", len(entries), *saveTrace)
	}

	if *full {
		if _, err := bench.RunFig5(os.Stdout, *dot); err != nil {
			fatal(err)
		}
	}
	if *reduced {
		if _, err := bench.RunFig6(os.Stdout, *threshold, *dot); err != nil {
			fatal(err)
		}
	}
	if *handlers {
		if _, err := bench.RunFig8(os.Stdout, *dot); err != nil {
			fatal(err)
		}
	}
	if *stats {
		_, p, err := bench.Fig5Workload()
		if err != nil {
			fatal(err)
		}
		fmt.Println("runtime counters (video player workload):")
		fmt.Print(p.Sender.Sys.StatsSummary())
	}
}

func analyzeFile(path string, threshold int, dot bool) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	// Sniff the format: binary traces start with the EVTR magic.
	var head [4]byte
	n, _ := io.ReadFull(f, head[:])
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		fatal(err)
	}
	var entries []trace.Entry
	if n == 4 && string(head[:]) == "EVTR" {
		entries, err = trace.ReadBinary(f)
	} else {
		entries, err = trace.Read(f)
	}
	if err != nil {
		fatal(err)
	}
	g := profile.BuildEventGraph(entries)
	fmt.Printf("trace %s: %d entries, %d nodes, %d edges\n", path, len(entries), g.NumNodes(), g.NumEdges())
	for _, e := range g.Edges() {
		kind := "sync"
		if !e.Sync() {
			kind = "async"
		}
		fmt.Printf("  %-20s -> %-20s %6d [%s]\n", g.Name(e.From), g.Name(e.To), e.Weight, kind)
	}
	r := g.Reduce(threshold)
	fmt.Printf("reduced (t=%d): %d nodes, %d edges\n", threshold, r.NumNodes(), r.NumEdges())
	for _, p := range g.Paths(threshold, 32) {
		fmt.Printf("  path: %s\n", p.String(g))
	}
	for _, c := range r.Chains() {
		fmt.Printf("  chain: %s\n", c.String(r))
	}
	if dot {
		if err := g.WriteDOT(os.Stdout, "trace"); err != nil {
			fatal(err)
		}
	}
}

// workloadEntries generates the named workload's trace. batch > 1 makes
// the batchpipe workload drain in batches of that size (the other
// workloads pace their drains internally and ignore it).
func workloadEntries(name string, batch int) ([]trace.Entry, error) {
	switch name {
	case "videoplayer":
		entries, _, err := bench.Fig5Workload()
		return entries, err
	case "seccomm":
		entries, _, err := bench.SecCommWorkload()
		return entries, err
	case "batchpipe":
		entries, _, err := bench.BatchPipeWorkload(batch)
		return entries, err
	}
	return nil, fmt.Errorf("unknown workload %q (want videoplayer, seccomm or batchpipe)", name)
}

// runCheck validates either a saved file (trace or flight-dump JSON) or,
// with no -trace, a freshly generated workload trace. It prints one line
// per violation and fails when any is found.
func runCheck(path, workload string, batch int) error {
	var problems []string
	var n int
	var what string
	if path == "" {
		entries, err := workloadEntries(workload, batch)
		if err != nil {
			return err
		}
		n, what = len(entries), workload+" workload trace"
		for _, v := range trace.Check(entries) {
			problems = append(problems, v.String())
		}
	} else {
		var err error
		n, what, problems, err = checkFile(path)
		if err != nil {
			return err
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "evprof: check:", p)
		}
		return fmt.Errorf("%s: %d violations in %d records", what, len(problems), n)
	}
	fmt.Printf("check ok: %s, %d records, 0 violations\n", what, n)
	return nil
}

// checkFile sniffs the file format — binary trace (EVTR magic),
// flight-dump JSON ('{'), or text trace — and runs the matching checker.
func checkFile(path string) (n int, what string, problems []string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, "", nil, err
	}
	defer f.Close()
	var head [4]byte
	hn, _ := io.ReadFull(f, head[:])
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, "", nil, err
	}
	switch {
	case hn == 4 && string(head[:]) == "EVTR":
		entries, err := trace.ReadBinary(f)
		if err != nil {
			return 0, "", nil, err
		}
		what = path + " (binary trace)"
		for _, v := range trace.Check(entries) {
			problems = append(problems, v.String())
		}
		return len(entries), what, problems, nil
	case hn > 0 && (head[0] == '{' || head[0] == '['):
		var dump telemetry.FlightDump
		if err := json.NewDecoder(f).Decode(&dump); err != nil {
			return 0, "", nil, fmt.Errorf("%s: not a flight dump: %w", path, err)
		}
		return len(dump.Records), path + " (flight dump)", dump.Validate(), nil
	default:
		entries, err := trace.Read(f)
		if err != nil {
			return 0, "", nil, err
		}
		what = path + " (text trace)"
		for _, v := range trace.Check(entries) {
			problems = append(problems, v.String())
		}
		return len(entries), what, problems, nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evprof:", err)
	os.Exit(1)
}
