package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eventopt/internal/bench"
	"eventopt/internal/telemetry"
	"eventopt/internal/trace"
)

func writeTrace(t *testing.T, name string, entries []trace.Entry, binary bool) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if binary {
		err = trace.WriteBinary(f, entries)
	} else {
		_, err = trace.WriteEntries(f, entries)
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckGoldenSecCommTrace(t *testing.T) {
	entries, _, err := bench.SecCommWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("seccomm workload produced no trace")
	}
	for _, binary := range []bool{false, true} {
		path := writeTrace(t, "golden", entries, binary)
		n, _, problems, err := checkFile(path)
		if err != nil {
			t.Fatalf("checkFile(binary=%v): %v", binary, err)
		}
		if len(problems) != 0 {
			t.Errorf("golden trace (binary=%v) has violations: %v", binary, problems)
		}
		if n != len(entries) {
			t.Errorf("checked %d records, wrote %d", n, len(entries))
		}
	}
}

func TestCheckRejectsCorruptedTrace(t *testing.T) {
	entries, _, err := bench.SecCommWorkload()
	if err != nil {
		t.Fatal(err)
	}
	// Hand-corrupt the trace: drop the first HandlerExit, leaving its
	// frame open forever — the checker must flag the imbalance.
	exit := -1
	for i, e := range entries {
		if e.Kind == trace.HandlerExit {
			exit = i
			break
		}
	}
	if exit < 0 {
		t.Fatal("workload trace has no handler exits")
	}
	corrupted := append(append([]trace.Entry(nil), entries[:exit]...), entries[exit+1:]...)
	path := writeTrace(t, "corrupt", corrupted, true)
	_, _, problems, err := checkFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) == 0 {
		t.Fatal("corrupted trace passed the checker")
	}
	found := false
	for _, p := range problems {
		if strings.Contains(p, "nest-balance") {
			found = true
		}
	}
	if !found {
		t.Errorf("violations lack nest-balance: %v", problems)
	}
}

func TestCheckFlightDump(t *testing.T) {
	dump := telemetry.FlightDump{
		Reason: "quarantine: E/h",
		Domain: 1,
		Seq:    1,
		Records: []telemetry.FlightRecord{
			{Seq: 10, Event: 3, Name: "E", Domain: 1, Outcome: telemetry.OutcomeOK, Duration: 5, End: 100},
			{Seq: 11, Event: 3, Name: "E", Domain: 1, Outcome: telemetry.OutcomeFault, Cause: "boom", Duration: 7, End: 130},
		},
	}
	write := func(d telemetry.FlightDump) string {
		path := filepath.Join(t.TempDir(), "dump.json")
		data, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	n, _, problems, err := checkFile(write(dump))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 || n != 2 {
		t.Errorf("valid dump: n=%d problems=%v", n, problems)
	}

	// Corrupt it three ways: regressed seq, fault without cause, record
	// from the wrong domain.
	bad := dump
	bad.Records = append([]telemetry.FlightRecord(nil), dump.Records...)
	bad.Records[1].Seq = 9
	bad.Records[1].Cause = ""
	bad.Records[1].Domain = 0
	_, _, problems, err = checkFile(write(bad))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 3 {
		t.Errorf("corrupted dump: problems = %v, want 3", problems)
	}
}

func TestWorkloadEntriesUnknown(t *testing.T) {
	if _, err := workloadEntries("no-such-workload", 0); err == nil {
		t.Fatal("unknown workload accepted")
	}
	entries, err := workloadEntries("seccomm", 0)
	if err != nil || len(entries) == 0 {
		t.Fatalf("seccomm workload: %d entries, err %v", len(entries), err)
	}
}

func TestBatchpipeWorkloadChecksClean(t *testing.T) {
	entries, err := workloadEntries("batchpipe", 4)
	if err != nil || len(entries) == 0 {
		t.Fatalf("batchpipe workload: %d entries, err %v", len(entries), err)
	}
	if vs := trace.Check(entries); len(vs) != 0 {
		t.Fatalf("batched/coalesced golden trace flagged: %v", vs)
	}
}
