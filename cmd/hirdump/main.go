// Command hirdump makes the compiler side of the optimization visible:
// it builds the video player, profiles it, and prints the HIR of a hot
// event's handlers — each original body, the merged super-handler body,
// and the merged body after the compiler passes (inlining, constant
// propagation, CSE, peephole, DCE). With -full it prints the whole-chain
// body with subsumed raises spliced in.
package main

import (
	"flag"
	"fmt"
	"os"

	"eventopt/internal/core"
	"eventopt/internal/ctp"
	"eventopt/internal/event"
	"eventopt/internal/hir"
	"eventopt/internal/video"
)

func main() {
	var (
		eventName = flag.String("event", "Seg2Net", "event whose handlers to dump")
		full      = flag.Bool("full", false, "use full fusion (splice subsumed raises)")
	)
	flag.Parse()

	p, err := video.NewPlayer(ctp.DefaultConfig(), 25, 900)
	if err != nil {
		fatal(err)
	}
	sys := p.Sender.Sys
	ev := sys.Lookup(*eventName)
	if ev == event.NoID {
		fatal(fmt.Errorf("unknown event %q; try SegFromUser, Seg2Net, Adapt", *eventName))
	}

	fmt.Printf("=== original handler bodies of %s ===\n\n", *eventName)
	before := 0
	for _, h := range sys.Handlers(ev) {
		body, ok := h.IR.(*hir.Function)
		if !ok {
			fmt.Printf("(%s: native handler, no HIR)\n\n", h.Name)
			continue
		}
		before += body.NumInstrs()
		fmt.Println(body.String())
	}

	opts := core.DefaultOptions()
	if *full {
		opts.FullFusion = true
		opts.Partitioned = false
	}
	if _, err := p.Optimize(200, opts); err != nil {
		fatal(err)
	}
	sh := sys.FastPath(ev)
	if sh == nil {
		fatal(fmt.Errorf("no super-handler installed on %s (not hot?)", *eventName))
	}
	for i := range sh.Segments {
		seg := &sh.Segments[i]
		body, ok := seg.FusedIR.(*hir.Function)
		if !ok {
			continue
		}
		fmt.Printf("=== fused + optimized: %s (segment %s) ===\n\n", seg.FusedName, seg.EventName)
		fmt.Println(body.String())
		fmt.Printf("instructions: %d original -> %d fused+optimized\n\n", before, body.NumInstrs())
		if !*full {
			break // per-segment mode: the entry segment is the story
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hirdump:", err)
	os.Exit(1)
}
