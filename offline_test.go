package eventopt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"eventopt/internal/core"
	"eventopt/internal/profile"
	"eventopt/internal/trace"
)

// TestOfflineWorkflow exercises the paper's actual workflow end to end:
// run the instrumented program and persist the trace; later, in a
// separate "session", reload the trace, analyze it off-line, build the
// plan and install it — then verify the optimized program still behaves
// identically.
func TestOfflineWorkflow(t *testing.T) {
	build := func() (*App, ID, *[]string) {
		app := New()
		req := app.Sys.Define("request")
		audit := app.Sys.Define("audit")
		log := &[]string{}
		app.Sys.Bind(req, "stamp", func(c *Ctx) {
			*log = append(*log, "stamp:"+c.Args.String("id"))
		}, WithOrder(1), WithParams("id"))
		app.Sys.Bind(req, "serve", func(c *Ctx) {
			c.Raise(audit, A("id", c.Args.String("id")))
		}, WithOrder(2))
		app.Sys.Bind(audit, "sink", func(c *Ctx) {
			*log = append(*log, "audit:"+c.Args.String("id"))
		})
		return app, req, log
	}

	// Session 1: instrumented run, trace persisted (binary format).
	app1, req1, _ := build()
	rec := trace.NewRecorder()
	rec.EnableHandlerProfiling()
	app1.Sys.SetTracer(rec)
	for i := 0; i < 50; i++ {
		app1.Sys.Raise(req1, A("id", "x"))
	}
	app1.Sys.SetTracer(nil)
	path := filepath.Join(t.TempDir(), "run.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinary(f, rec.Entries()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Session 2: fresh program, off-line analysis of the saved trace.
	app2, req2, log2 := build()
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := trace.ReadBinary(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.Analyze(entries)
	if err != nil {
		t.Fatal(err)
	}
	// Event IDs are stable across sessions because Define order is the
	// program's own structure — the paper's per-configuration profiling
	// assumption.
	plan, _, err := core.Apply(app2.Sys, prof, app2.Mod, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Entries) == 0 {
		t.Fatalf("plan empty:\n%s", plan.Describe(app2.Sys))
	}

	// Reference behavior from an unoptimized twin.
	ref, reqR, logR := build()
	for _, id := range []string{"a", "b"} {
		ref.Sys.Raise(reqR, A("id", id))
	}

	app2.Sys.Stats().Reset()
	for _, id := range []string{"a", "b"} {
		app2.Sys.Raise(req2, A("id", id))
	}
	if len(*log2) != len(*logR) {
		t.Fatalf("logs differ: %v vs %v", *log2, *logR)
	}
	for i := range *logR {
		if (*log2)[i] != (*logR)[i] {
			t.Fatalf("logs differ at %d: %v vs %v", i, *log2, *logR)
		}
	}
	if app2.Sys.Stats().FastRuns.Load() != 2 {
		t.Errorf("FastRuns = %d", app2.Sys.Stats().FastRuns.Load())
	}
}

// TestOfflineWorkflowTextFormat covers the same flow through the text
// encoding, which survives hand inspection and editing.
func TestOfflineWorkflowTextFormat(t *testing.T) {
	app := New()
	ev := app.Sys.Define("E")
	app.Sys.Bind(ev, "h1", func(*Ctx) {}, WithOrder(1))
	app.Sys.Bind(ev, "h2", func(*Ctx) {}, WithOrder(2))
	rec := trace.NewRecorder()
	rec.EnableHandlerProfiling()
	app.Sys.SetTracer(rec)
	for i := 0; i < 30; i++ {
		app.Sys.Raise(ev)
	}
	app.Sys.SetTracer(nil)

	var buf bytes.Buffer
	if _, err := trace.WriteEntries(&buf, rec.Entries()); err != nil {
		t.Fatal(err)
	}
	entries, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.Analyze(entries)
	if err != nil {
		t.Fatal(err)
	}
	if hs, ok := prof.StableHandlers(ev); !ok || len(hs) != 2 {
		t.Errorf("handlers from reloaded trace: %v, %v", hs, ok)
	}
}
