// Package eventopt is a profile-directed optimizer for event-based
// programs, reproducing "Profile-Directed Optimization of Event-Based
// Programs" (Rajagopalan, Debray, Hiltunen, Schlichting; PLDI 2002).
//
// The package ties the pieces together behind one façade:
//
//   - an event runtime in the Cactus mold (events, handlers, dynamic
//     bindings, synchronous/asynchronous/timed activation),
//   - trace-based event and handler profiling (event graphs, reduced
//     graphs, event paths and chains),
//   - the optimizer: handler merging into super-handlers, event-chain
//     subsumption, HIR fusion with compiler passes (inlining, constant
//     propagation, CSE, DCE), installed behind binding-version guards
//     with whole-chain or per-event (partitioned) fallback.
//
// Typical use:
//
//	app := eventopt.New()
//	ev := app.Sys.Define("request")
//	app.Sys.Bind(ev, "audit", auditHandler)
//	app.Sys.Bind(ev, "serve", serveHandler)
//
//	app.StartProfiling()
//	runRepresentativeWorkload(app)
//	prof, _ := app.StopProfiling()
//
//	plan, handle, _ := app.Optimize(prof, eventopt.DefaultOptions())
//	_ = plan // inspect with plan.Describe(app.Sys)
//	// ... hot events now dispatch through super-handlers ...
//	handle.Uninstall() // back to fully generic dispatch
package eventopt

import (
	"errors"
	"io"
	"net/http"

	"eventopt/internal/adaptive"
	"eventopt/internal/core"
	"eventopt/internal/event"
	"eventopt/internal/hirrt"
	"eventopt/internal/profile"
	"eventopt/internal/span"
	"eventopt/internal/telemetry"
	"eventopt/internal/telemetry/httpdebug"
	"eventopt/internal/trace"
)

// Re-exported types: the runtime, profile and optimizer vocabulary.
type (
	// System is the event runtime (registry + scheduler).
	System = event.System
	// Ctx is the per-activation handler context.
	Ctx = event.Ctx
	// HandlerFunc is the signature of event handlers.
	HandlerFunc = event.HandlerFunc
	// ID identifies an event.
	ID = event.ID
	// Arg is one named raise argument.
	Arg = event.Arg
	// Options configures the optimizer.
	Options = core.Options
	// Plan is the optimizer's chosen set of super-handlers.
	Plan = core.Plan
	// Installed is the handle over installed super-handlers.
	Installed = core.Installed
	// Profile is an analyzed event/handler profile.
	Profile = profile.Profile
	// Module groups the HIR execution context of one component.
	Module = hirrt.Module
	// FaultPolicy selects the runtime's response to handler panics.
	FaultPolicy = event.FaultPolicy
	// FaultConfig tunes panic isolation and the quarantine breaker.
	FaultConfig = event.FaultConfig
	// RetryConfig tunes async retry with backoff and dead-lettering.
	RetryConfig = event.RetryConfig
	// FaultInfo describes one recovered handler panic.
	FaultInfo = event.FaultInfo
	// OverflowPolicy selects bounded-queue overflow behavior.
	OverflowPolicy = event.OverflowPolicy
	// TelemetryConfig tunes the live telemetry layer (see WithTelemetry).
	TelemetryConfig = telemetry.Config
	// FlightDump is one automatic flight-recorder capture.
	FlightDump = telemetry.FlightDump
	// FlightRecord is one activation in the flight recorder.
	FlightRecord = telemetry.FlightRecord
	// EventTelemetry is the histogram snapshot of one (event, domain) cell.
	EventTelemetry = telemetry.EventSnapshot
	// AdaptivePolicy tunes the adaptive online optimizer (see
	// WithAdaptiveOptimizer). The zero value selects sensible defaults.
	AdaptivePolicy = adaptive.Policy
	// AdaptiveController is the running adaptive optimizer of one App.
	AdaptiveController = adaptive.Controller
	// OptimizerSnapshot is the adaptive controller's published state.
	OptimizerSnapshot = telemetry.OptimizerSnapshot
	// SpanConfig tunes causal span tracing (see WithSpanTracing).
	SpanConfig = span.Config
	// Span is one recorded hop of a sampled trace.
	Span = span.Span
	// SLOConfig configures the SLO watchdog (see WithSLOWatchdog).
	SLOConfig = telemetry.SLOConfig
	// SLOObjective is one latency service-level objective.
	SLOObjective = telemetry.SLOObjective
	// SLOBreach is one fired watchdog alert.
	SLOBreach = telemetry.SLOBreach
)

// Fault policies (see event.FaultPolicy). Propagate is the default.
const (
	Propagate  = event.Propagate
	Isolate    = event.Isolate
	Quarantine = event.Quarantine
)

// Bounded-queue overflow policies (see event.OverflowPolicy).
const (
	DropOldest = event.DropOldest
	DropNewest = event.DropNewest
	RejectNew  = event.RejectNew
)

// BindOption configures a Bind call.
type BindOption = event.BindOption

// A builds a named argument (shorthand for raise calls).
func A(name string, val any) Arg { return event.A(name, val) }

// WithOrder sets a handler's execution order (lower runs first).
func WithOrder(order int) BindOption { return event.WithOrder(order) }

// WithParams declares the parameters a handler expects from the raise.
func WithParams(names ...string) BindOption { return event.WithParams(names...) }

// WithBindArgs attaches static bind-time arguments to the binding.
func WithBindArgs(args ...Arg) BindOption { return event.WithBindArgs(args...) }

// DefaultOptions enables the full optimization stack.
func DefaultOptions() Options { return core.DefaultOptions() }

// SystemOption configures the runtime at construction.
type SystemOption = event.Option

// WithVirtualClock runs the app on a deterministic virtual clock (timed
// events fire by advancing simulated time in Drain).
func WithVirtualClock() SystemOption {
	return event.WithClock(event.NewVirtualClock())
}

// WithFaultConfig installs a supervision configuration: panic isolation
// (Isolate) or isolation plus a per-binding quarantine circuit breaker
// with backoff re-admission (Quarantine). With a policy set, a panic in
// optimized code additionally auto-deoptimizes the faulting
// super-handler and replays the activation through generic dispatch.
func WithFaultConfig(cfg FaultConfig) SystemOption { return event.WithFaultConfig(cfg) }

// WithFaultPolicy is WithFaultConfig with default tuning.
func WithFaultPolicy(p FaultPolicy) SystemOption { return event.WithFaultPolicy(p) }

// WithRetryConfig re-enqueues faulted asynchronous activations with
// capped exponential backoff and dead-letters exhausted ones.
func WithRetryConfig(cfg RetryConfig) SystemOption { return event.WithRetryConfig(cfg) }

// WithQueueBound bounds the asynchronous run queue (per domain).
func WithQueueBound(capacity int, policy OverflowPolicy) SystemOption {
	return event.WithQueueBound(capacity, policy)
}

// WithTelemetry enables the live observability layer: per-event latency
// and queue-delay histograms, a per-domain flight recorder dumped
// automatically on quarantine trips and dead-letters, and a sampled
// continuous event-graph feed that keeps System.Telemetry().Graph()
// current without a separate profiling run. The zero TelemetryConfig
// selects the defaults; the record paths stay allocation-free.
func WithTelemetry(cfg TelemetryConfig) SystemOption { return event.WithTelemetry(cfg) }

// WithSpanTracing enables causal span tracing: sampled root raises get
// a trace ID that propagates through nested raises, cross-domain async
// handoffs, coalesced continuations, batched drains, timer retries,
// dead-letter replays and post-deopt generic replays. Retained traces
// are served at /spans (JSON, ?format=chrome for a Chrome trace export)
// and rendered by evtop's span pane. The zero SpanConfig samples 1-in-16
// roots; the context rides as fixed-size words in the pooled activation
// records, so sync raises stay at 0 allocs/op with tracing on.
func WithSpanTracing(cfg SpanConfig) SystemOption { return event.WithSpanTracing(cfg) }

// WithSLOWatchdog attaches the SLO burn-rate watchdog (implies
// WithTelemetry): each tick evaluates the configured latency objectives
// against the histogram growth since the previous tick, and a burn rate
// at or above the threshold dumps the affected domain's flight ring and
// raises a synthetic "slo.breach" event — bind a handler to it to
// alert or shed load. Drive ticks with Sys.SLO().Start(interval) or
// explicit Sys.SLO().Tick() calls.
func WithSLOWatchdog(cfg SLOConfig) SystemOption { return event.WithSLOWatchdog(cfg) }

// WithAdaptiveOptimizer attaches the closed-loop adaptive optimizer:
// a background controller that periodically lifts the live telemetry
// graph into the offline planning machinery (reduce, hot paths, chain
// subsumption), installs super-handlers for the currently-hot events,
// and demotes them when the workload shifts. It implies WithTelemetry;
// New starts the controller's background loop, and App.Adaptive exposes
// it (Stop/Uninstall/Close, manual Tick for tests). The offline
// profile→optimize workflow (StartProfiling / Optimize) remains the
// paper-faithful path; the adaptive layer reuses it online.
func WithAdaptiveOptimizer(p AdaptivePolicy) SystemOption {
	return event.WithAdaptiveOptimizer(p)
}

// WithDomains shards the runtime into n event domains. Each domain owns
// its own run queue, timer heap, atomicity lock and quarantine state;
// events spread over domains by ID hash unless pinned with
// System.PinEvent. The default single domain preserves the fully
// deterministic serialized runtime; with n > 1, activations of events in
// different domains execute in parallel under System.Run.
func WithDomains(n int) SystemOption { return event.WithDomains(n) }

// WithBatchDrain makes domain run loops (System.Run and
// System.DrainBatched) pop up to k runnable activations per queue-lock
// acquisition, hoisting fast-path guard resolution across consecutive
// activations of the same event. Step and Drain stay strictly
// single-step. k < 2 leaves draining unbatched.
func WithBatchDrain(k int) SystemOption { return event.WithBatchDrain(k) }

// App is one event-based application: a runtime plus its HIR module and
// an optional live profiling session.
type App struct {
	Sys *System
	Mod *Module

	rec      *trace.Recorder
	adaptive *AdaptiveController
}

// New creates an application with a fresh runtime. When the runtime was
// configured with WithAdaptiveOptimizer, the adaptive controller is
// created here (the facade owns the HIR module it fuses against) and its
// background loop started.
func New(opts ...SystemOption) *App {
	sys := event.New(opts...)
	app := &App{Sys: sys, Mod: hirrt.NewModule(sys)}
	if pol, ok := sys.AdaptivePolicy().(adaptive.Policy); ok {
		// New cannot fail here: WithAdaptiveOptimizer implied telemetry.
		if c, err := adaptive.Start(sys, app.Mod, pol); err == nil {
			app.adaptive = c
		}
	}
	return app
}

// Adaptive returns the running adaptive controller, or nil when the app
// was built without WithAdaptiveOptimizer.
func (a *App) Adaptive() *AdaptiveController { return a.adaptive }

// Close stops background machinery: the adaptive controller's loop is
// halted and its installs evicted. Apps without adaptive optimization
// need no Close.
func (a *App) Close() {
	if a.adaptive != nil {
		a.adaptive.Close()
	}
}

// StartProfiling begins recording events and handler activity (the
// paper's instrumented execution). It replaces any previous recording.
func (a *App) StartProfiling() {
	a.rec = trace.NewRecorder()
	a.rec.EnableHandlerProfiling()
	a.Sys.SetTracer(a.rec)
}

// ErrNotProfiling is returned by StopProfiling without StartProfiling.
var ErrNotProfiling = errors.New("eventopt: StopProfiling without StartProfiling")

// StopProfiling ends the recording and analyzes it into a Profile.
func (a *App) StopProfiling() (*Profile, error) {
	if a.rec == nil {
		return nil, ErrNotProfiling
	}
	a.Sys.SetTracer(nil)
	entries := a.rec.Entries()
	a.rec = nil
	return profile.Analyze(entries)
}

// Optimize plans super-handlers from a profile and installs them.
func (a *App) Optimize(prof *Profile, opts Options) (*Plan, *Installed, error) {
	return core.Apply(a.Sys, prof, a.Mod, opts)
}

// DebugHandler returns the HTTP observability surface of the app:
// /metrics (counters + telemetry snapshots), /metrics.prom (Prometheus
// text exposition), /events (per-event histogram document, the evtop
// feed), /graph (live sampled event graph as Graphviz DOT, ?threshold=
// reduces), /flightrecorder (automatic flight dumps), /spans (causal
// span traces, ?format=chrome for a Chrome trace export), /trace
// (Chrome trace-event JSON of the current profiling recording) and
// /debug/pprof. Mount it on a mux or serve it directly:
//
//	go http.ListenAndServe("localhost:6060", app.DebugHandler())
//
// The handler captures the profiling recorder active at call time, so
// call it after StartProfiling when /trace should serve the recording;
// telemetry endpoints require WithTelemetry (404 otherwise) while
// /metrics always serves the runtime counters.
func (a *App) DebugHandler() http.Handler { return httpdebug.New(a.Sys, a.rec) }

// WriteChromeTrace exports the in-progress profiling recording as
// Chrome trace-event JSON (loadable in chrome://tracing or Perfetto):
// one timeline per event domain, a complete-duration slice per
// activation with nested handler slices when handler profiling is on.
// It snapshots the recorder between StartProfiling and StopProfiling.
func (a *App) WriteChromeTrace(w io.Writer) error {
	if a.rec == nil {
		return ErrNotProfiling
	}
	return trace.WriteChrome(w, a.rec.Entries())
}

// ProfileTwoPhase implements the paper's two-phase profiling workflow
// (section 3.1): the workload first runs under event-level
// instrumentation only; the event graph is reduced by threshold (0
// selects an automatic tenth-of-max) to find the hot events; then the
// workload runs again with handler-level instrumentation enabled for
// exactly those events. The returned profile carries full handler detail
// where it matters and stays small everywhere else. The workload must be
// repeatable — the paper's programs were run "enough times to develop an
// adequate profile".
func (a *App) ProfileTwoPhase(workload func(), threshold int) (*Profile, error) {
	// Phase 1: events only.
	rec1 := trace.NewRecorder()
	a.Sys.SetTracer(rec1)
	workload()
	a.Sys.SetTracer(nil)
	p1, err := profile.Analyze(rec1.Entries())
	if err != nil {
		return nil, err
	}
	t := threshold
	if t <= 0 {
		t = core.AutoThreshold(p1.Graph)
	}
	hot := p1.Graph.Reduce(t).Nodes()
	if len(hot) == 0 {
		return p1, nil // nothing hot: the event-level profile is all there is
	}

	// Phase 2: handler instrumentation for the hot events only.
	rec2 := trace.NewRecorder()
	rec2.EnableHandlerProfiling(hot...)
	a.Sys.SetTracer(rec2)
	workload()
	a.Sys.SetTracer(nil)
	return profile.Analyze(rec2.Entries())
}
