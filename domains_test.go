package eventopt

import (
	"bytes"
	"testing"

	"eventopt/internal/ctp"
	"eventopt/internal/event"
	"eventopt/internal/seccomm"
	"eventopt/internal/trace"
	"eventopt/internal/video"
)

// seccommTrace runs the SecComm push/pop workload under full
// instrumentation and returns the serialized text trace plus the final
// counter snapshot.
func seccommTrace(t *testing.T, opts ...SystemOption) ([]byte, event.StatsSnapshot) {
	t.Helper()
	return seccommTraceHooked(t, nil, opts...)
}

// seccommTraceHooked is seccommTrace with an optional hook: attach is
// called with the constructed system before the workload and may return
// a function to run between workload iterations (the adaptive
// determinism guard uses it to interleave controller ticks).
func seccommTraceHooked(t *testing.T, attach func(*event.System) func(), opts ...SystemOption) ([]byte, event.StatsSnapshot) {
	t.Helper()
	cfg := seccomm.Config{
		DESKey: []byte("8bytekey"),
		XORKey: []byte{0x5A, 0xA5, 0x3C},
		IV:     []byte("initvect"),
	}
	e, err := seccomm.New(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var between func()
	if attach != nil {
		between = attach(e.Sys)
	}
	rec := trace.NewRecorder()
	rec.EnableHandlerProfiling()
	e.Sys.SetTracer(rec)
	var pkt []byte
	e.OnSend(func(p []byte) { pkt = append(pkt[:0], p...) })
	msg := []byte("determinism probe payload")
	for i := 0; i < 20; i++ {
		e.Push(msg)
		e.HandlePacket(append([]byte(nil), pkt...))
		if between != nil {
			between()
		}
	}
	e.Sys.SetTracer(nil)
	var buf bytes.Buffer
	if _, err := trace.WriteEntries(&buf, rec.Entries()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), e.Sys.Stats().Snapshot()
}

// videoTrace runs the video player workload and serializes its trace.
func videoTrace(t *testing.T, opts ...event.Option) ([]byte, event.StatsSnapshot) {
	t.Helper()
	p, err := video.NewPlayer(ctp.DefaultConfig(), 30, 1024, opts...)
	if err != nil {
		t.Fatal(err)
	}
	entries := p.Trace(50)
	var buf bytes.Buffer
	if _, err := trace.WriteEntries(&buf, entries); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), p.Sender.Sys.Stats().Snapshot()
}

// TestSingleDomainDeterminism asserts that the sharded runtime with one
// domain is byte-for-byte the historical serialized runtime on the
// paper's workloads: the default system and an explicit WithDomains(1)
// produce identical traces and identical counters, and repeated runs are
// identical to themselves (no nondeterminism crept in with the
// lock-free registry).
func TestSingleDomainDeterminism(t *testing.T) {
	defTrace, defStats := seccommTrace(t)
	oneTrace, oneStats := seccommTrace(t, WithDomains(1))
	if !bytes.Equal(defTrace, oneTrace) {
		t.Errorf("seccomm: WithDomains(1) trace differs from default (%d vs %d bytes)",
			len(oneTrace), len(defTrace))
	}
	if defStats != oneStats {
		t.Errorf("seccomm: stats differ:\ndefault %+v\ndomains1 %+v", defStats, oneStats)
	}
	againTrace, againStats := seccommTrace(t)
	if !bytes.Equal(defTrace, againTrace) {
		t.Error("seccomm: repeated default run is not deterministic")
	}
	if defStats != againStats {
		t.Error("seccomm: repeated default run changed the counters")
	}
	if len(defTrace) == 0 || defStats.Raises == 0 {
		t.Fatal("seccomm workload recorded nothing")
	}

	vDef, vDefStats := videoTrace(t)
	vOne, vOneStats := videoTrace(t, event.WithDomains(1))
	if !bytes.Equal(vDef, vOne) {
		t.Errorf("video: WithDomains(1) trace differs from default (%d vs %d bytes)",
			len(vOne), len(vDef))
	}
	if vDefStats != vOneStats {
		t.Errorf("video: stats differ:\ndefault %+v\ndomains1 %+v", vDefStats, vOneStats)
	}
	if len(vDef) == 0 || vDefStats.Raises == 0 {
		t.Fatal("video workload recorded nothing")
	}
}

// TestSingleDomainTraceFormatUnchanged pins the text format of
// single-domain traces: no trailing domain field may appear, so trace
// files from the pre-sharding runtime and this one stay interchangeable.
func TestSingleDomainTraceFormatUnchanged(t *testing.T) {
	raw, _ := seccommTrace(t)
	entries, err := trace.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Read back: %v", err)
	}
	for _, e := range entries {
		if e.Domain != 0 {
			t.Fatalf("single-domain trace carries domain %d: %+v", e.Domain, e)
		}
	}
	var again bytes.Buffer
	if _, err := trace.WriteEntries(&again, entries); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, again.Bytes()) {
		t.Error("trace does not round-trip byte-identically")
	}
}
