package eventopt

import (
	"bytes"
	"testing"

	"eventopt/internal/codegen/gen"
	"eventopt/internal/codegen/genplan"
	"eventopt/internal/core"
	"eventopt/internal/event"
	"eventopt/internal/trace"
)

// seccommTierTrace primes a fresh Fig. 12 endpoint with the genplan
// profiling drive (identical on both tiers), installs the requested
// execution tier, and then records the standard determinism probe.
func seccommTierTrace(t *testing.T, generated bool) ([]byte, event.StatsSnapshot, int) {
	t.Helper()
	e, err := genplan.SecCommEndpoint()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := genplan.SecCommPlan(e)
	if err != nil {
		t.Fatal(err)
	}
	var ins *core.Installed
	if generated {
		ins, err = core.InstallGenerated(e.Sys, e.Mod, gen.SeccommSupers())
	} else {
		ins, err = plan.Install(e.Sys, e.Mod)
	}
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	rec.EnableHandlerProfiling()
	e.Sys.SetTracer(rec)
	var pkt []byte
	e.OnSend(func(p []byte) { pkt = append(pkt[:0], p...) })
	msg := []byte("determinism probe payload")
	for i := 0; i < 20; i++ {
		e.Push(msg)
		e.HandlePacket(append([]byte(nil), pkt...))
	}
	e.Sys.SetTracer(nil)
	var buf bytes.Buffer
	if _, err := trace.WriteEntries(&buf, rec.Entries()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), e.Sys.Stats().Snapshot(), len(ins.Evicted())
}

// videoTierTrace is the video-player equivalent: the Fig. 11 player,
// primed with the 200-frame profiling run, then traced for 50 frames on
// the requested tier.
func videoTierTrace(t *testing.T, generated bool) ([]byte, event.StatsSnapshot, int) {
	t.Helper()
	p, err := genplan.VideoPlayer()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := genplan.VideoPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	var ins *core.Installed
	if generated {
		ins, err = core.InstallGenerated(p.Sender.Sys, p.Sender.Mod, gen.VideoplayerSupers())
	} else {
		ins, err = plan.Install(p.Sender.Sys, p.Sender.Mod)
	}
	if err != nil {
		t.Fatal(err)
	}
	entries := p.Trace(50)
	var buf bytes.Buffer
	if _, err := trace.WriteEntries(&buf, entries); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), p.Sender.Sys.Stats().Snapshot(), len(ins.Evicted())
}

// TestGeneratedTierTraceIdentity asserts the AOT-generated tier is
// observationally identical to the HIR tier: byte-identical traces,
// identical counters, zero deoptimizations — and the fused fast paths
// actually executed (the trace names the super-handlers).
func TestGeneratedTierTraceIdentity(t *testing.T) {
	hirTrace, hirStats, hirDeopts := seccommTierTrace(t, false)
	genTrace, genStats, genDeopts := seccommTierTrace(t, true)
	if !bytes.Equal(hirTrace, genTrace) {
		t.Errorf("seccomm: generated-tier trace differs from HIR tier (%d vs %d bytes)",
			len(genTrace), len(hirTrace))
	}
	if hirStats != genStats {
		t.Errorf("seccomm: stats differ:\nhir %+v\ngenerated %+v", hirStats, genStats)
	}
	if hirDeopts != 0 || genDeopts != 0 {
		t.Errorf("seccomm: unexpected deopts (hir %d, generated %d)", hirDeopts, genDeopts)
	}
	if !bytes.Contains(genTrace, []byte("super_")) {
		t.Error("seccomm: generated-tier trace never entered a super-handler")
	}
	if len(genTrace) == 0 || genStats.Raises == 0 {
		t.Fatal("seccomm tier probe recorded nothing")
	}
}

// TestFastPathProvenance asserts installed fast paths report which tier
// produced them, the field /optimizer and evtop surface.
func TestFastPathProvenance(t *testing.T) {
	e, err := genplan.SecCommEndpoint()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := genplan.SecCommPlan(e)
	if err != nil {
		t.Fatal(err)
	}
	check := func(want string) {
		t.Helper()
		fps := e.Sys.FastPaths()
		if len(fps) == 0 {
			t.Fatalf("no fast paths installed (want provenance %q)", want)
		}
		for _, fp := range fps {
			if fp.Provenance != want {
				t.Errorf("fast path %s: provenance %q, want %q", fp.EntryName, fp.Provenance, want)
			}
		}
	}
	ins, err := plan.Install(e.Sys, e.Mod)
	if err != nil {
		t.Fatal(err)
	}
	check("offline")
	ins.Uninstall()
	gins, err := core.InstallGenerated(e.Sys, e.Mod, gen.SeccommSupers())
	if err != nil {
		t.Fatal(err)
	}
	check("generated")
	gins.Uninstall()
	if got := len(e.Sys.FastPaths()); got != 0 {
		t.Errorf("after uninstall: %d fast paths remain", got)
	}
}

// TestGeneratedTierTraceIdentityVideo is the same guard on the video
// player workload.
func TestGeneratedTierTraceIdentityVideo(t *testing.T) {
	hirTrace, hirStats, hirDeopts := videoTierTrace(t, false)
	genTrace, genStats, genDeopts := videoTierTrace(t, true)
	if !bytes.Equal(hirTrace, genTrace) {
		t.Errorf("video: generated-tier trace differs from HIR tier (%d vs %d bytes)",
			len(genTrace), len(hirTrace))
	}
	if hirStats != genStats {
		t.Errorf("video: stats differ:\nhir %+v\ngenerated %+v", hirStats, genStats)
	}
	if hirDeopts != 0 || genDeopts != 0 {
		t.Errorf("video: unexpected deopts (hir %d, generated %d)", hirDeopts, genDeopts)
	}
	// p.Trace records event-level entries only (no handler profiling),
	// so prove the fused paths ran via the fast-path counter instead.
	if genStats.FastRuns == 0 {
		t.Error("video: generated tier never ran a fast path")
	}
	if len(genTrace) == 0 || genStats.Raises == 0 {
		t.Fatal("video tier probe recorded nothing")
	}
}
