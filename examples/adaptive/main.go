// Adaptive: the closed-loop optimizer discovering a shifting hot set
// online. Two request pipelines with identical shapes — checkout and
// search, each a head event whose last handler synchronously raises a
// logging tail — take turns being hot. No profiling run, no explicit
// Optimize call: the app is built with WithAdaptiveOptimizer, and the
// controller lifts the live telemetry graph into the planner, installs
// a super-handler for whichever pipeline is currently hot, and swaps it
// when the traffic rotates.
//
// The controller normally ticks on its own background interval; the
// walkthrough calls Tick directly between batches so the output is
// deterministic and each decision is visible as it happens.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"os"

	"eventopt"
	"eventopt/internal/liveview"
)

func main() {
	app := eventopt.New(
		eventopt.WithTelemetry(eventopt.TelemetryConfig{SampleEvery: 1, TimeSampleEvery: 64}),
		eventopt.WithAdaptiveOptimizer(eventopt.AdaptivePolicy{
			// One batch of 500 raises pushes a family's smoothed rate to
			// ~200/tick; demotion follows at a quarter of that. The short
			// cooldown keeps the demo responsive.
			PromoteThreshold: 150,
			CooldownTicks:    1,
		}),
	)
	defer app.Close()
	sys := app.Sys

	type pipeline struct {
		name string
		head eventopt.ID
	}
	mkPipeline := func(name string) pipeline {
		head := sys.Define(name)
		tail := sys.Define(name + ".log")
		sys.Bind(head, "auth", func(c *eventopt.Ctx) {}, eventopt.WithOrder(0))
		sys.Bind(head, "serve", func(c *eventopt.Ctx) {}, eventopt.WithOrder(1))
		sys.Bind(head, "audit", func(c *eventopt.Ctx) { c.Raise(tail) }, eventopt.WithOrder(2))
		sys.Bind(tail, "sink", func(c *eventopt.Ctx) {})
		return pipeline{name: name, head: head}
	}
	checkout := mkPipeline("checkout")
	search := mkPipeline("search")

	ctl := app.Adaptive()
	show := func(phase string) {
		fmt.Printf("\n== %s ==\n", phase)
		if err := liveview.RenderOptimizer(os.Stdout, ctl.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "adaptive:", err)
			os.Exit(1)
		}
		for _, p := range []pipeline{checkout, search} {
			state := "generic dispatch"
			if sys.FastPath(p.head) != nil {
				state = "super-handler installed"
			}
			fmt.Printf("  %-10s %s\n", p.name, state)
		}
	}
	batch := func(p pipeline, n int) {
		for i := 0; i < n; i++ {
			if err := sys.Raise(p.head); err != nil {
				fmt.Fprintln(os.Stderr, "adaptive:", err)
				os.Exit(1)
			}
		}
		ctl.Tick()
	}

	show("cold start: nothing hot, nothing installed")

	// Phase 1: checkout traffic dominates. After a batch and a control
	// tick the checkout chain crosses the promote threshold.
	for i := 0; i < 3; i++ {
		batch(checkout, 500)
	}
	show("phase 1: checkout hot -> promoted online")

	// Phase 2: traffic rotates to search. The controller promotes search
	// on the first tick that sees it hot; checkout stays installed while
	// its smoothed rate decays through the hysteresis band (promote at
	// 150, demote only below a quarter of that — no flapping at the
	// boundary) and is evicted a few ticks later.
	for i := 0; i < 6; i++ {
		batch(search, 500)
	}
	show("phase 2: traffic rotated -> search promoted, stale checkout demoted")

	// The offline workflow (StartProfiling / Optimize) still exists and
	// is unchanged — the controller reuses its planner; Close reverts
	// every adaptive install.
	app.Close()
	fmt.Println()
	fmt.Println("after Close: all adaptive installs evicted")
	for _, p := range []pipeline{checkout, search} {
		if sys.FastPath(p.head) != nil {
			fmt.Fprintf(os.Stderr, "adaptive: %s still optimized after Close\n", p.name)
			os.Exit(1)
		}
	}
}
