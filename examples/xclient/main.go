// Xclient: the paper's section 4.3 setting — the simulated X Window
// system with the xterm menu popup and the gvim scrollbar. The example
// exercises all three X handler mechanisms (event handlers, callbacks,
// actions through translation tables), then optimizes both clients and
// shows the identical display output.
package main

import (
	"fmt"

	"eventopt/internal/core"
	"eventopt/internal/profile"
	"eventopt/internal/trace"
	"eventopt/internal/xwin"
)

func optimize(c *xwin.Client, drive func()) {
	rec := trace.NewRecorder()
	rec.EnableHandlerProfiling()
	c.Sys.SetTracer(rec)
	drive()
	c.Sys.SetTracer(nil)
	prof, err := profile.Analyze(rec.Entries())
	if err != nil {
		panic(err)
	}
	opts := core.DefaultOptions()
	opts.MergeAll = true
	if _, _, err := core.Apply(c.Sys, prof, c.Mod, opts); err != nil {
		panic(err)
	}
}

func main() {
	// xterm: typing goes through a plain event handler; CTRL+button goes
	// through the translation table into two action handlers, the second
	// invoking two callbacks.
	xt := xwin.NewXTerm()
	for _, ch := range "hello" {
		xt.Type(int(ch))
	}
	xt.Popup(30, 40)
	fmt.Printf("xterm: %d chars typed, menu inited=%v, %d paint ops\n",
		xt.Client.Mod.Globals.Get("vt100.chars").Int(),
		xt.Client.Mod.Globals.Get("mainMenu.inited").Int() == 1,
		len(xt.Client.Display.Ops))

	optimize(xt.Client, func() {
		for i := 0; i < 60; i++ {
			xt.Popup(30, i%60)
		}
	})
	xt.Client.Display.Reset()
	xt.Popup(10, 20)
	fmt.Printf("xterm optimized: popup fast-path runs=%d, paint ops=%d\n",
		xt.Client.Sys.Stats().FastRuns.Load(), len(xt.Client.Display.Ops))

	// gvim: dragging the scrollbar runs the two Scroll action handlers
	// and their jump/scroll callbacks.
	g := xwin.NewGvim()
	g.Scroll(120)
	fmt.Printf("gvim: scrolled to line %d\n", g.TopLine())
	optimize(g.Client, func() {
		for i := 0; i < 60; i++ {
			g.Scroll(i * 5 % 360)
		}
	})
	g.Scroll(200)
	fmt.Printf("gvim optimized: line %d, fast-path runs=%d\n",
		g.TopLine(), g.Client.Sys.Stats().FastRuns.Load())

	// A server wiring both clients, as in Fig. 3.
	srv := xwin.NewServer()
	srv.Connect(xt.Client)
	srv.Connect(g.Client)
	srv.Send(xwin.XEvent{Type: xwin.KeyPress, Window: xt.VT.ID, Detail: 'x'})
	srv.Send(xwin.XEvent{Type: xwin.MotionNotify, Window: g.Scrollbar.ID, Y: 50, State: xwin.Button1Mask})
	fmt.Printf("queued via server: xterm=%d gvim=%d activations after flush\n",
		xt.Client.Flush(), g.Client.Flush())
}
