// Quickstart: define events and handlers, profile a workload, optimize,
// and compare the dispatch counters before and after — the whole
// pipeline of the paper on a ten-line program.
package main

import (
	"fmt"

	"eventopt"
)

func main() {
	app := eventopt.New()

	// An HTTP-ish request pipeline: request -> (auth, handle) where the
	// handle step synchronously raises a log event.
	request := app.Sys.Define("request")
	logEv := app.Sys.Define("log")

	served := 0
	app.Sys.Bind(request, "auth", func(c *eventopt.Ctx) {
		if c.Args.String("user") == "" {
			c.Halt() // unauthenticated: skip the remaining handlers
		}
	}, eventopt.WithOrder(1), eventopt.WithParams("user"))
	app.Sys.Bind(request, "handle", func(c *eventopt.Ctx) {
		served++
		c.Raise(logEv, eventopt.A("line", "served "+c.Args.String("user")))
	}, eventopt.WithOrder(2), eventopt.WithParams("user"))
	lines := 0
	app.Sys.Bind(logEv, "sink", func(c *eventopt.Ctx) { lines++ })

	// 1. Profile a representative workload.
	app.StartProfiling()
	for i := 0; i < 1000; i++ {
		app.Sys.Raise(request, eventopt.A("user", "alice"))
	}
	prof, err := app.StopProfiling()
	if err != nil {
		panic(err)
	}

	// 2. Plan and install super-handlers.
	plan, handle, err := app.Optimize(prof, eventopt.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Print(plan.Describe(app.Sys))

	// 3. Same behavior, cheaper dispatch.
	app.Sys.Stats().Reset()
	for i := 0; i < 1000; i++ {
		app.Sys.Raise(request, eventopt.A("user", "bob"))
	}
	app.Sys.Raise(request, eventopt.A("user", "")) // halted by auth
	st := app.Sys.Stats().Snapshot()               // one coherent read of every counter
	fmt.Printf("served=%d logged=%d\n", served, lines)
	fmt.Printf("fast-path runs: %d, generic dispatches: %d, marshals: %d (fast share %.0f%%)\n",
		st.FastRuns, st.Generic, st.Marshals, 100*st.FastShare())

	// 4. Dynamic rebinding is safe: the guard detects it and falls back.
	app.Sys.Bind(logEv, "audit", func(*eventopt.Ctx) {})
	app.Sys.Raise(request, eventopt.A("user", "carol"))
	fmt.Printf("after rebinding log: segment fallbacks = %d (correctness preserved)\n",
		app.Sys.Stats().SegFallbacks.Load())

	handle.Uninstall()

	// 5. Scaling out: shard the runtime into event domains. Each domain
	// owns its own run queue, timers and atomicity lock, so activations of
	// events in different domains dispatch in parallel while the registry
	// stays lock-free. One domain (the default) is the fully deterministic
	// serialized runtime used above.
	sharded := eventopt.New(eventopt.WithDomains(4))
	reqs := make([]eventopt.ID, 4)
	hits := make([]int, 4)
	for i := range reqs {
		i := i
		reqs[i] = sharded.Sys.Define(fmt.Sprintf("request%d", i))
		sharded.Sys.Bind(reqs[i], "serve", func(*eventopt.Ctx) { hits[i]++ })
	}
	done := make(chan struct{}, len(reqs))
	for _, ev := range reqs {
		go func(ev eventopt.ID) { // distinct domains: these raises run in parallel
			for i := 0; i < 1000; i++ {
				sharded.Sys.Raise(ev)
			}
			done <- struct{}{}
		}(ev)
	}
	for range reqs {
		<-done
	}
	fmt.Printf("sharded over %d domains: hits=%v, raises=%d\n",
		sharded.Sys.NumDomains(), hits, sharded.Sys.Stats().Raises.Load())
}
