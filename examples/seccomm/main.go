// Seccomm: the paper's configurable secure-communication service. Two
// endpoints are composed from micro-protocols (DES privacy, XOR privacy,
// keyed-MD5 integrity), wired back to back, profiled and optimized; a
// tampered packet demonstrates that the optimized pop chain still
// detects corruption and halts.
package main

import (
	"bytes"
	"fmt"

	"eventopt/internal/ciphers"
	"eventopt/internal/core"
	"eventopt/internal/profile"
	"eventopt/internal/seccomm"
	"eventopt/internal/trace"
)

func main() {
	cfg := seccomm.Config{
		DESKey: []byte("8bytekey"),
		XORKey: []byte{0x5A, 0xA5, 0x3C},
		MACKey: []byte("integrity-key"),
		IV:     []byte("initvect"),
	}
	alice, bob, err := seccomm.Pair(cfg)
	if err != nil {
		panic(err)
	}
	var received [][]byte
	bob.OnDeliver(func(m []byte) { received = append(received, append([]byte(nil), m...)) })

	// Capture one wire packet for the demo.
	var lastWire []byte
	innerSend := func(p []byte) {
		lastWire = append([]byte(nil), p...)
		bob.HandlePacket(append([]byte(nil), p...))
	}
	alice.OnSend(innerSend)

	// Profile and optimize both endpoints.
	for _, e := range []*seccomm.Endpoint{alice, bob} {
		rec := trace.NewRecorder()
		rec.EnableHandlerProfiling()
		e.Sys.SetTracer(rec)
		for i := 0; i < 50; i++ {
			alice.Push([]byte("profiling message"))
		}
		e.Sys.SetTracer(nil)
		prof, err := profile.Analyze(rec.Entries())
		if err != nil {
			panic(err)
		}
		opts := core.DefaultOptions()
		opts.MergeAll = true
		if _, _, err := core.Apply(e.Sys, prof, e.Mod, opts); err != nil {
			panic(err)
		}
	}
	received = nil

	msg := []byte("the eagle lands at dawn")
	alice.Push(msg)
	fmt.Printf("sent      : %q\n", msg)
	fmt.Printf("wire bytes: %x...\n", lastWire[:16])
	fmt.Printf("received  : %q\n", received[0])
	if !bytes.Equal(received[0], msg) {
		panic("round trip corrupted")
	}
	fmt.Printf("plaintext on the wire: %v\n", bytes.Contains(lastWire, msg[:8]))

	// Tamper with a packet: integrity halts the optimized pop chain.
	bad := append([]byte(nil), lastWire...)
	bad[3] ^= 0xFF
	before := len(received)
	bob.HandlePacket(bad)
	bob.Sys.Drain()
	fmt.Printf("tampered packet delivered: %v, errors counted: %d\n",
		len(received) != before, bob.Errors)
	fmt.Printf("fast-path runs (bob): %d\n", bob.Sys.Stats().FastRuns.Load())

	sessionDemo()
}

// sessionDemo shows the ClientKeyDistribution micro-protocol of paper
// Fig. 2: the DES session key travels to the server under RSA; a data
// packet arriving before the key raises the keyMiss event.
func sessionDemo() {
	fmt.Println("\n--- ClientKeyDistribution (openSession / keyMiss) ---")
	key, err := ciphers.GenerateRSA(512, nil)
	if err != nil {
		panic(err)
	}
	cfg := seccomm.SessionConfig{MACKey: []byte("session-mac")}
	srv, err := seccomm.NewServer(key, cfg)
	if err != nil {
		panic(err)
	}
	cli, err := seccomm.NewClient(key.Public(), cfg)
	if err != nil {
		panic(err)
	}
	cli.OnSend(func(p []byte) { srv.HandlePacket(append([]byte(nil), p...)) })

	// Data before any session: the keyMiss event fires.
	srv.HandlePacket([]byte{0x02, 0xDE, 0xAD})
	fmt.Printf("keyMiss events before session: %d\n", srv.KeyMisses)

	if err := cli.Open(); err != nil {
		panic(err)
	}
	fmt.Printf("sessions opened: %d\n", srv.Sessions)
	var got []byte
	srv.OnDeliver(func(m []byte) { got = append([]byte(nil), m...) })
	cli.Push([]byte("over the fresh session key"))
	fmt.Printf("server received: %q\n", got)
}
