// Monitor: live observability of a running event system. A small
// request pipeline (request -> validate/handle -> log, plus a timed
// housekeeping tick and an occasionally panicking handler under
// quarantine supervision) runs under WithTelemetry while an httpdebug
// server exposes /metrics, /events, /graph, /flightrecorder and pprof.
//
// By default the program drives a burst of load, prints the evtop-style
// table and the quarantine flight dump, and exits — so it doubles as a
// smoke test. With -serve it keeps the load generator and the HTTP
// endpoint running for interactive use:
//
//	go run ./examples/monitor -serve &
//	go run ./cmd/evtop -url http://localhost:6060
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"time"

	"eventopt"
	"eventopt/internal/liveview"
	"eventopt/internal/telemetry/httpdebug"
)

func main() {
	var (
		serve = flag.Bool("serve", false, "keep serving telemetry after the initial burst")
		addr  = flag.String("addr", "localhost:6060", "telemetry listen address (-serve only)")
	)
	flag.Parse()

	app := eventopt.New(
		eventopt.WithTelemetry(eventopt.TelemetryConfig{SampleEvery: 1, TimeSampleEvery: 1}),
		eventopt.WithFaultConfig(eventopt.FaultConfig{
			Policy:           eventopt.Quarantine,
			FailureThreshold: 3,
		}),
	)
	sys := app.Sys

	request := sys.Define("request")
	logEv := sys.Define("log")
	tick := sys.Define("tick")

	served := 0
	sys.Bind(request, "validate", func(c *eventopt.Ctx) {
		if c.Args.Int("size") <= 0 {
			c.Halt()
		}
	}, eventopt.WithOrder(1), eventopt.WithParams("size"))
	sys.Bind(request, "handle", func(c *eventopt.Ctx) {
		served++
		busy(c.Args.Int("size"))
		c.Raise(logEv)
	}, eventopt.WithOrder(2), eventopt.WithParams("size"))
	sys.Bind(logEv, "sink", func(c *eventopt.Ctx) {})
	sys.Bind(tick, "flaky", func(c *eventopt.Ctx) {
		// A housekeeping job that corrupts its state on the tenth tick
		// and panics on every run after that: three consecutive faults
		// trip the quarantine breaker, which dumps the flight recorder.
		if c.Args.Int("n") >= 10 {
			panic("housekeeping corrupted state")
		}
	}, eventopt.WithParams("n"))

	rng := rand.New(rand.NewSource(1))
	burst := func(n int) {
		for i := 0; i < n; i++ {
			_ = sys.Raise(request, eventopt.A("size", 1+rng.Intn(64)))
			if i%10 == 9 {
				_ = sys.Raise(tick, eventopt.A("n", i/10))
			}
		}
	}
	burst(500)

	srv := httpdebug.New(sys, nil)

	if *serve {
		go func() {
			for {
				burst(50)
				time.Sleep(100 * time.Millisecond)
			}
		}()
		fmt.Printf("serving telemetry on http://%s (try evtop -url http://%s)\n", *addr, *addr)
		if err := http.ListenAndServe(*addr, srv); err != nil {
			fmt.Fprintln(os.Stderr, "monitor:", err)
			os.Exit(1)
		}
		return
	}

	// One-shot mode: query our own handler the way evtop would and show
	// what the operator sees.
	ln := httptestListen(srv)
	defer ln.close()

	doc, err := liveview.Fetch(ln.url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "monitor:", err)
		os.Exit(1)
	}
	fmt.Printf("per-event telemetry after %d served requests:\n\n", served)
	if err := liveview.Render(os.Stdout, doc, liveview.SortCount, false); err != nil {
		fmt.Fprintln(os.Stderr, "monitor:", err)
		os.Exit(1)
	}

	if d := sys.Telemetry().LastDump(); d != nil {
		fmt.Printf("\nflight recorder dumped (%s): %d records, newest:\n", d.Reason, len(d.Records))
		for _, r := range d.Records[max(0, len(d.Records)-3):] {
			outcome := "ok"
			if r.Outcome != 0 {
				outcome = "FAULT: " + r.Cause
			}
			fmt.Printf("  seq %-4d %-10s %8.2fus  %s\n", r.Seq, r.Name, float64(r.Duration)/1e3, outcome)
		}
	}
}

// busy burns a little CPU proportional to the request size, so the
// latency histogram has structure.
func busy(n int) {
	acc := 0
	for i := 0; i < n*20; i++ {
		acc += i * i
	}
	_ = acc
}

// httptestListen serves the handler on an ephemeral localhost port, so
// the one-shot mode exercises the same HTTP path evtop uses.
type listener struct {
	url   string
	close func()
}

func httptestListen(h http.Handler) *listener {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "monitor:", err)
		os.Exit(1)
	}
	s := &http.Server{Handler: h}
	go s.Serve(ln)
	return &listener{
		url:   "http://" + ln.Addr().String(),
		close: func() { s.Close() },
	}
}
