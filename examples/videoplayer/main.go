// Videoplayer: the paper's section 4.2 application — a frame-paced
// sender over the CTP configurable transport protocol. The example runs
// the same clip unoptimized and optimized and reports protocol activity
// and event-path time.
package main

import (
	"fmt"
	"runtime"
	"time"

	"eventopt/internal/core"
	"eventopt/internal/ctp"
	"eventopt/internal/hir"
	"eventopt/internal/video"
)

func main() {
	const frames = 300

	build := func(optimize bool) *video.Player {
		p, err := video.NewPlayer(ctp.DefaultConfig(), 25, 1200)
		if err != nil {
			panic(err)
		}
		if optimize {
			plan, err := p.Optimize(150, core.DefaultOptions())
			if err != nil {
				panic(err)
			}
			fmt.Println("installed super-handlers:")
			fmt.Print(plan.Describe(p.Sender.Sys))
			// The profiling run advanced protocol state (sequence numbers,
			// FEC interval position); reset the cells that change which
			// segments a run emits, so both runs see the same clip.
			p.Sender.Mod.Globals.Set(ctp.CellFECCount, hir.IntVal(0))
			p.Sender.Mod.Globals.Set(ctp.CellParity, hir.BytesVal([]byte{}))
		}
		return p
	}
	orig := build(false)
	opt := build(true)

	// Interleave timed rounds (best of three) so machine noise does not
	// decide the comparison; the behavior counters come from the first
	// round of each.
	origRes := orig.Run(frames)
	optRes := opt.Run(frames)
	origBest, optBest := origRes.EventTime, optRes.EventTime
	for i := 0; i < 2; i++ {
		runtime.GC()
		if d := orig.Run(frames).EventTime; d < origBest {
			origBest = d
		}
		runtime.GC()
		if d := opt.Run(frames).EventTime; d < optBest {
			optBest = d
		}
	}

	fmt.Printf("\n%d frames at 25 fps (virtual time %v)\n", frames, origRes.VirtualDuration)
	fmt.Printf("%-12s %14s %14s\n", "", "original", "optimized")
	fmt.Printf("%-12s %14v %14v\n", "event time", origBest.Round(time.Microsecond), optBest.Round(time.Microsecond))
	fmt.Printf("%-12s %14d %14d\n", "segments", origRes.Stats.Segments, optRes.Stats.Segments)
	fmt.Printf("%-12s %14d %14d\n", "transmitted", origRes.Stats.Transmitted, optRes.Stats.Transmitted)
	fmt.Printf("%-12s %14d %14d\n", "acked", origRes.Stats.Acked, optRes.Stats.Acked)
	fmt.Printf("%-12s %14d %14d\n", "delivered", origRes.Delivered, optRes.Delivered)
	if origRes.Stats.Acked != optRes.Stats.Acked || origRes.Delivered != optRes.Delivered {
		panic("optimization changed protocol behavior")
	}
	fmt.Println("\nprotocol behavior identical; only the dispatch cost changed.")
}
